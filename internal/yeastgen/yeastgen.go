// Package yeastgen generates a synthetic stand-in for the S. cerevisiae
// proteome and its curated interaction network (BioGRID/DOMINO in the
// paper), which are not shipped with this repository.
//
// The generator plants "lock-and-key" sequence motifs: a fixed vocabulary
// of master motifs is paired up (motif 2k binds motif 2k+1), every
// protein carries mutated copies of a few motifs, and two proteins
// interact when they carry complementary motifs. This reproduces the
// statistical structure PIPE mines — window pairs that co-occur across
// many known interacting pairs — while motif popularity follows a Zipf
// law so the interaction graph gets the heavy-tailed degree distribution
// of real PPI networks, and motif-rich sequences are costlier to score
// (the paper's Figure 3 difficulty spread).
//
// The generator also provides the ground-truth binding oracle used by the
// simulated wet lab: a novel sequence truly binds protein P when it
// carries a high-fidelity copy of a motif complementary to one of P's.
package yeastgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ppigraph"
	"repro/internal/seq"
	"repro/internal/submat"
)

// Component labels a cellular localization; non-target sets are drawn
// from the target's component (paper Section 4).
type Component int

// Cellular components assigned to synthetic proteins.
const (
	Cytoplasm Component = iota
	Nucleus
	Mitochondrion
	Membrane
	NumComponents
)

// String returns the component name.
func (c Component) String() string {
	switch c {
	case Cytoplasm:
		return "cytoplasm"
	case Nucleus:
		return "nucleus"
	case Mitochondrion:
		return "mitochondrion"
	case Membrane:
		return "membrane"
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// Params controls proteome generation. Use DefaultParams or TestParams
// as starting points.
type Params struct {
	Seed        int64
	NumProteins int
	MinLen      int // minimum protein length (residues)
	MaxLen      int // maximum protein length
	// Motif vocabulary. Motifs are paired: motif 2k binds motif 2k+1.
	NumMotifs int // must be even
	MotifLen  int
	// MaxMotifsPerProtein bounds how many motif instances one protein
	// carries (at least one; heavier proteins are rarer).
	MaxMotifsPerProtein int
	// MotifMutRate is the per-residue mutation rate applied to each
	// planted motif copy (sequence divergence among instances).
	MotifMutRate float64
	// EdgeProb is the probability that a complementary motif pair on two
	// proteins yields a recorded interaction edge.
	EdgeProb float64
	// NoiseEdges adds this many random spurious interactions.
	NoiseEdges int
	// ZipfS is the Zipf exponent for motif popularity (larger means more
	// skew, stronger hubs).
	ZipfS float64
	// ZipfOffset flattens the head of the popularity law
	// (weight ~ 1/(rank+offset)^s), bounding hub size so the interaction
	// graph stays sparse like real PPI networks.
	ZipfOffset float64
	// WetlabTargets is the number of dedicated well-posed wet-lab targets
	// to plant (see wetlab.go). The last 2*WetlabTargets motifs of the
	// vocabulary are reserved for them.
	WetlabTargets int
}

// DefaultParams sizes the proteome for the experiment harness: large
// enough to show the paper's effects, small enough for a laptop.
func DefaultParams() Params {
	return Params{
		Seed:                1,
		NumProteins:         500,
		MinLen:              120,
		MaxLen:              450,
		NumMotifs:           80,
		MotifLen:            24,
		MaxMotifsPerProtein: 3,
		MotifMutRate:        0.08,
		EdgeProb:            0.08,
		NoiseEdges:          30,
		ZipfS:               1.4,
		ZipfOffset:          10,
		WetlabTargets:       3,
	}
}

// TestParams is a small fast configuration for unit tests.
func TestParams() Params {
	p := DefaultParams()
	p.NumProteins = 120
	p.MinLen = 100
	p.MaxLen = 200
	p.NumMotifs = 24
	p.MaxMotifsPerProtein = 2
	p.EdgeProb = 0.12
	p.NoiseEdges = 6
	p.WetlabTargets = 1
	return p
}

func (p Params) validate() error {
	if p.NumProteins < 2 {
		return fmt.Errorf("yeastgen: need at least 2 proteins, got %d", p.NumProteins)
	}
	if p.NumMotifs < 2 || p.NumMotifs%2 != 0 {
		return fmt.Errorf("yeastgen: NumMotifs must be even and >= 2, got %d", p.NumMotifs)
	}
	if p.WetlabTargets < 0 || p.NumMotifs-2*p.WetlabTargets < 4 {
		return fmt.Errorf("yeastgen: %d wet-lab targets leave too few of %d motifs",
			p.WetlabTargets, p.NumMotifs)
	}
	if p.MinLen < p.MotifLen*p.MaxMotifsPerProtein {
		return fmt.Errorf("yeastgen: MinLen %d cannot host %d motifs of length %d",
			p.MinLen, p.MaxMotifsPerProtein, p.MotifLen)
	}
	if p.MaxLen < p.MinLen {
		return fmt.Errorf("yeastgen: MaxLen %d < MinLen %d", p.MaxLen, p.MinLen)
	}
	if p.MotifMutRate < 0 || p.MotifMutRate >= 1 {
		return fmt.Errorf("yeastgen: MotifMutRate %f out of [0,1)", p.MotifMutRate)
	}
	return nil
}

// Proteome is a generated synthetic proteome with its interaction network
// and ground-truth structure.
type Proteome struct {
	Params   Params
	Proteins []seq.Sequence
	Graph    *ppigraph.Graph

	motifs       []seq.Sequence // master motif sequences
	motifOf      [][]int        // motif IDs planted in each protein
	components   []Component
	wetlabIDs    []int
	oracleMatrix *submat.Matrix
}

// Generate builds a proteome from params. Generation is deterministic in
// Params.Seed.
func Generate(p Params) (*Proteome, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	sampler := seq.NewSampler(seq.YeastComposition())

	pr := &Proteome{Params: p, oracleMatrix: submat.PAM120()}

	// Master motif vocabulary.
	for m := 0; m < p.NumMotifs; m++ {
		pr.motifs = append(pr.motifs,
			seq.Random(rng, fmt.Sprintf("motif%02d", m), p.MotifLen, seq.YeastComposition()))
	}

	// Zipf popularity over motifs: weight(rank r) ~ 1/r^s.
	weights := make([]float64, p.NumMotifs)
	total := 0.0
	for m := range weights {
		weights[m] = 1 / math.Pow(float64(m+1)+p.ZipfOffset, p.ZipfS)
		total += weights[m]
	}
	// The last 2*WetlabTargets motifs are reserved for wet-lab targets.
	zipfMotifs := p.NumMotifs - 2*p.WetlabTargets
	total = 0
	for m := 0; m < zipfMotifs; m++ {
		total += weights[m]
	}
	drawMotif := func() int {
		u := rng.Float64() * total
		for m := 0; m < zipfMotifs; m++ {
			u -= weights[m]
			if u <= 0 {
				return m
			}
		}
		return zipfMotifs - 1
	}

	// Proteins: background residues plus planted motif copies.
	builder := ppigraph.NewBuilder()
	usedNames := make(map[string]bool, p.NumProteins)
	for _, n := range PaperWetlabNames {
		usedNames[n] = true // reserved for wet-lab targets
	}
	var genErr error
	addProtein := func(name string, body []byte, comp Component, motifs []int) {
		prot, err := seq.New(name, string(body))
		if err != nil && genErr == nil {
			genErr = err
			return
		}
		pr.Proteins = append(pr.Proteins, prot)
		pr.components = append(pr.components, comp)
		pr.motifOf = append(pr.motifOf, motifs)
		builder.AddProtein(name)
	}
	for i := 0; i < p.NumProteins; i++ {
		length := p.MinLen + rng.Intn(p.MaxLen-p.MinLen+1)
		name := SystematicName(rng)
		for usedNames[name] {
			name = SystematicName(rng)
		}
		usedNames[name] = true
		body := []byte(seq.Random(rng, name, length, seq.YeastComposition()).Residues())

		nm := 1 + rng.Intn(p.MaxMotifsPerProtein)
		// Non-overlapping slots: partition sequence into nm blocks and
		// place one motif at a random offset within each block.
		block := length / nm
		var motifs []int
		for s := 0; s < nm; s++ {
			if block < p.MotifLen {
				break
			}
			motifID := drawMotif()
			inst := seq.Mutate(rng, pr.motifs[motifID], p.MotifMutRate, sampler)
			off := s*block + rng.Intn(block-p.MotifLen+1)
			copy(body[off:], inst.Residues())
			motifs = append(motifs, motifID)
		}
		addProtein(name, body, Component(rng.Intn(int(NumComponents))), motifs)
	}
	if p.WetlabTargets > 0 {
		first := len(pr.Proteins)
		pr.generateWetlabTargets(rng, addProtein)
		perTarget := (len(pr.Proteins) - first) / p.WetlabTargets
		for k := 0; k < p.WetlabTargets; k++ {
			pr.wetlabIDs = append(pr.wetlabIDs, first+k*perTarget)
		}
	}
	if genErr != nil {
		return nil, genErr
	}

	// Interaction edges from complementary motifs; reserved wet-lab motif
	// pairs use a denser, well-studied interaction neighborhood.
	carriers := make([][]int, p.NumMotifs)
	for i, ms := range pr.motifOf {
		for _, m := range ms {
			carriers[m] = append(carriers[m], i)
		}
	}
	for m := 0; m+1 < p.NumMotifs; m += 2 {
		prob := p.EdgeProb
		if m >= zipfMotifs {
			prob = wetlabEdgeProb
		}
		for _, a := range carriers[m] {
			for _, b := range carriers[m+1] {
				if a != b && rng.Float64() < prob {
					builder.AddEdgeID(a, b)
				}
			}
		}
	}
	for e := 0; e < p.NoiseEdges; e++ {
		builder.AddEdgeID(rng.Intn(p.NumProteins), rng.Intn(p.NumProteins))
	}
	pr.Graph = builder.Build()
	return pr, nil
}

// Component returns the cellular component of protein id.
func (pr *Proteome) Component(id int) Component { return pr.components[id] }

// ComponentMembers returns the IDs of all proteins in component c.
func (pr *Proteome) ComponentMembers(c Component) []int {
	var out []int
	for id, cc := range pr.components {
		if cc == c {
			out = append(out, id)
		}
	}
	return out
}

// Motifs returns the IDs of motifs planted in protein id.
func (pr *Proteome) Motifs(id int) []int { return pr.motifOf[id] }

// MasterMotif returns the master sequence of motif m.
func (pr *Proteome) MasterMotif(m int) seq.Sequence { return pr.motifs[m] }

// ComplementOf returns the motif that binds motif m.
func (pr *Proteome) ComplementOf(m int) int {
	if m%2 == 0 {
		return m + 1
	}
	return m - 1
}

// ID looks up a protein by name.
func (pr *Proteome) ID(name string) (int, bool) { return pr.Graph.ID(name) }

// SystematicName produces a plausible yeast systematic ORF name
// (e.g. "YBL051C"). Names are random draws; Generate retries on
// collision so proteome names are unique.
func SystematicName(rng *rand.Rand) string {
	chrom := byte('A' + rng.Intn(16))
	arm := byte("LR"[rng.Intn(2)])
	num := rng.Intn(300) + 1
	strand := byte("WC"[rng.Intn(2)])
	return fmt.Sprintf("Y%c%c%03d%c", chrom, arm, num, strand)
}
