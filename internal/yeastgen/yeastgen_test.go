package yeastgen

import (
	"math/rand"
	"regexp"
	"testing"

	"repro/internal/seq"
)

func genTest(t testing.TB) *Proteome {
	t.Helper()
	pr, err := Generate(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestGenerateBasics(t *testing.T) {
	pr := genTest(t)
	p := TestParams()
	// NumProteins regular proteins plus the wet-lab cast (target, decoy
	// and partners per wet-lab target).
	want := p.NumProteins + p.WetlabTargets*(2+wetlabPartners)
	if len(pr.Proteins) != want {
		t.Fatalf("got %d proteins, want %d", len(pr.Proteins), want)
	}
	if pr.Graph.NumProteins() != want {
		t.Fatalf("graph has %d vertices", pr.Graph.NumProteins())
	}
	for i, prot := range pr.Proteins {
		if prot.Len() < p.MinLen || prot.Len() > p.MaxLen {
			t.Errorf("protein %d length %d outside [%d,%d]", i, prot.Len(), p.MinLen, p.MaxLen)
		}
		if !seq.Valid(prot.Residues()) {
			t.Errorf("protein %d has invalid residues", i)
		}
		if pr.Graph.Name(i) != prot.Name() {
			t.Errorf("graph vertex %d name mismatch", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTest(t)
	b := genTest(t)
	for i := range a.Proteins {
		if a.Proteins[i].Residues() != b.Proteins[i].Residues() {
			t.Fatalf("protein %d differs between runs with same seed", i)
		}
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("edge counts differ between runs with same seed")
	}
	p := TestParams()
	p.Seed = 2
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Proteins[0].Residues() == a.Proteins[0].Residues() {
		t.Error("different seeds produced identical proteomes")
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.NumProteins = 1 },
		func(p *Params) { p.NumMotifs = 7 },
		func(p *Params) { p.MinLen = 10 },
		func(p *Params) { p.MaxLen = p.MinLen - 1 },
		func(p *Params) { p.MotifMutRate = 1.5 },
	}
	for i, mutate := range bad {
		p := TestParams()
		mutate(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestNamesUniqueAndSystematic(t *testing.T) {
	pr := genTest(t)
	re := regexp.MustCompile(`^(Y[A-P][LR][0-9]{3}[WC]|WL[TDP][0-9A-Z]*[WC])$`)
	seen := map[string]bool{}
	for _, p := range pr.Proteins {
		if seen[p.Name()] {
			t.Fatalf("duplicate name %s", p.Name())
		}
		seen[p.Name()] = true
		if !re.MatchString(p.Name()) {
			t.Errorf("name %q not systematic", p.Name())
		}
	}
}

func TestEveryProteinHasMotif(t *testing.T) {
	pr := genTest(t)
	for i := range pr.Proteins {
		if len(pr.Motifs(i)) == 0 {
			t.Errorf("protein %d carries no motifs", i)
		}
	}
}

func TestGraphHasHubs(t *testing.T) {
	pr := genTest(t)
	s := pr.Graph.Stats()
	if s.Max < int(2*s.Mean) {
		t.Errorf("degree distribution not heavy-tailed: max %d, mean %.1f", s.Max, s.Mean)
	}
	if pr.Graph.NumEdges() < pr.Graph.NumProteins()*3/4 {
		t.Errorf("graph too sparse: %d edges for %d proteins",
			pr.Graph.NumEdges(), pr.Graph.NumProteins())
	}
}

func TestInteractingPairsShareComplementaryMotifs(t *testing.T) {
	pr := genTest(t)
	p := TestParams()
	// Count edges explained by complementary motifs; noise edges are the
	// only exception, so the explained fraction must dominate.
	explained, total := 0, 0
	pr.Graph.Edges(func(a, b int) bool {
		total++
		for _, ma := range pr.Motifs(a) {
			for _, mb := range pr.Motifs(b) {
				if pr.ComplementOf(ma) == mb {
					explained++
					return true
				}
			}
		}
		return true
	})
	if total == 0 {
		t.Fatal("no edges generated")
	}
	frac := float64(explained) / float64(total)
	minFrac := 1 - 2*float64(p.NoiseEdges)/float64(total)
	if frac < minFrac-0.1 {
		t.Errorf("only %.2f of edges explained by motifs", frac)
	}
}

func TestComplementOf(t *testing.T) {
	pr := genTest(t)
	if pr.ComplementOf(0) != 1 || pr.ComplementOf(1) != 0 {
		t.Error("ComplementOf(0/1) wrong")
	}
	if pr.ComplementOf(6) != 7 || pr.ComplementOf(7) != 6 {
		t.Error("ComplementOf(6/7) wrong")
	}
}

func TestComponents(t *testing.T) {
	pr := genTest(t)
	counts := map[Component]int{}
	for i := range pr.Proteins {
		c := pr.Component(i)
		if c < 0 || c >= NumComponents {
			t.Fatalf("protein %d has component %d", i, c)
		}
		counts[c]++
	}
	members := pr.ComponentMembers(Cytoplasm)
	if len(members) != counts[Cytoplasm] {
		t.Errorf("ComponentMembers = %d, counted %d", len(members), counts[Cytoplasm])
	}
	for _, id := range members {
		if pr.Component(id) != Cytoplasm {
			t.Fatal("ComponentMembers returned wrong component")
		}
	}
	if Cytoplasm.String() != "cytoplasm" || Component(99).String() == "" {
		t.Error("Component.String wrong")
	}
}

func TestMotifAffinitySelf(t *testing.T) {
	pr := genTest(t)
	// A master motif embedded verbatim scores affinity 1 for itself.
	m0 := pr.MasterMotif(0)
	host := seq.MustNew("host", m0.Residues()+m0.Residues())
	aff := pr.MotifAffinity(host)
	if aff[0] < 0.999 {
		t.Errorf("self affinity = %f, want 1", aff[0])
	}
}

func TestMotifAffinityRandomLow(t *testing.T) {
	pr := genTest(t)
	rng := rand.New(rand.NewSource(99))
	random := seq.Random(rng, "rnd", 150, seq.YeastComposition())
	aff := pr.MotifAffinity(random)
	for m, a := range aff {
		if a > motifMatchFrac {
			t.Errorf("random sequence has affinity %.2f for motif %d (> threshold)", a, m)
		}
	}
}

func TestBindingStrengthOracle(t *testing.T) {
	pr := genTest(t)
	// Build a sequence carrying the complement of protein 0's first motif:
	// it must truly bind protein 0.
	m := pr.Motifs(0)[0]
	comp := pr.MasterMotif(pr.ComplementOf(m))
	rng := rand.New(rand.NewSource(7))
	body := []byte(seq.Random(rng, "binder", 120, seq.YeastComposition()).Residues())
	copy(body[40:], comp.Residues())
	binder := seq.MustNew("binder", string(body))
	if !pr.TrulyBinds(binder, 0) {
		t.Fatal("sequence carrying complementary motif does not bind")
	}
	if s := pr.BindingStrength(binder, 0); s < 0.9 {
		t.Errorf("exact complementary motif strength = %f, want ~1", s)
	}
	// A random sequence must not bind.
	random := seq.Random(rng, "rnd", 120, seq.YeastComposition())
	if pr.TrulyBinds(random, 0) {
		t.Error("random sequence binds protein 0")
	}
}

func TestBindingStrengthDegradesWithMutation(t *testing.T) {
	pr := genTest(t)
	m := pr.Motifs(0)[0]
	comp := pr.MasterMotif(pr.ComplementOf(m))
	rng := rand.New(rand.NewSource(8))
	sampler := seq.NewSampler(seq.YeastComposition())
	embed := func(motif seq.Sequence) seq.Sequence {
		body := []byte(seq.Random(rand.New(rand.NewSource(3)), "host", 120, seq.YeastComposition()).Residues())
		copy(body[40:], motif.Residues())
		return seq.MustNew("host", string(body))
	}
	exact := pr.BindingStrength(embed(comp), 0)
	mut := pr.BindingStrength(embed(seq.Mutate(rng, comp, 0.25, sampler)), 0)
	if mut >= exact {
		t.Errorf("25%% mutated motif strength %.3f >= exact %.3f", mut, exact)
	}
}

func TestDifficultySequences(t *testing.T) {
	pr := genTest(t)
	rng := rand.New(rand.NewSource(5))
	names := map[string]bool{}
	for d := DifficultyEasiest; d < NumDifficulties; d++ {
		s := pr.DifficultySequence(rng, d, 200)
		if s.Len() != 200 {
			t.Errorf("%v: length %d", d, s.Len())
		}
		names[s.Name()] = true
		if d.PaperName() != s.Name() {
			t.Errorf("%v name %q != %q", d, s.Name(), d.PaperName())
		}
	}
	if len(names) != int(NumDifficulties) {
		t.Error("difficulty names not distinct")
	}
	// Harder sequences have affinity for more motifs.
	count := func(d Difficulty) int {
		s := pr.DifficultySequence(rand.New(rand.NewSource(6)), d, 240)
		n := 0
		for _, a := range pr.MotifAffinity(s) {
			if a > motifMatchFrac {
				n++
			}
		}
		return n
	}
	if count(DifficultyEasiest) != 0 {
		t.Error("easiest sequence carries motifs")
	}
	if count(DifficultyHardest) < 3 {
		t.Errorf("hardest sequence carries %d motifs, want >= 3", count(DifficultyHardest))
	}
}

func TestIDLookup(t *testing.T) {
	pr := genTest(t)
	name := pr.Proteins[5].Name()
	id, ok := pr.ID(name)
	if !ok || id != 5 {
		t.Errorf("ID(%q) = %d,%v", name, id, ok)
	}
}
