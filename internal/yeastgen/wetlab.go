package yeastgen

import (
	"fmt"
	"math/rand"

	"repro/internal/seq"
)

// Wet-lab target construction. The paper selected experimental targets
// against four criteria (cytoplasmic, small, moderately abundant, with a
// known stress phenotype) and further kept only the candidates whose
// designed inhibitors scored best — i.e. targets whose design problem is
// well-posed. The generator mirrors that selection by planting, for each
// requested wet-lab target, a dedicated motif pair excluded from the
// Zipf vocabulary:
//
//   - the target protein carries the reserved motif m* (cytoplasmic, the
//     paper's criterion 1);
//   - one decoy protein also carries m* (PIPE's MinOcc co-occurrence
//     rule needs >= 2 carriers) but lives in a different compartment, so
//     it is not part of the same-component non-target set;
//   - wetlabPartners mono-motif proteins carry the complement c* and
//     interact with both m* carriers.
//
// The only evidence path from a candidate to the target then runs
// through genuine c* similarity, so a design that satisfies PIPE also
// truly binds the target under the ground-truth oracle.
const (
	wetlabPartners = 6
	wetlabEdgeProb = 0.6
)

// PaperWetlabNames are the systematic names of the paper's three
// experimental candidates (Section 4.2).
var PaperWetlabNames = []string{"YBL051C", "YAL017W", "YDL001W"}

// WetlabTargetIDs returns the protein IDs of the generated wet-lab
// targets (empty when Params.WetlabTargets is zero).
func (pr *Proteome) WetlabTargetIDs() []int {
	return append([]int(nil), pr.wetlabIDs...)
}

// WetlabTargetMotif returns the reserved motif planted in wet-lab target
// number k (0-based) — the motif whose complement an inhibitor must
// carry.
func (pr *Proteome) WetlabTargetMotif(k int) int {
	return pr.Params.NumMotifs - 2*(k+1)
}

// generateWetlabTargets appends the special proteins. Called by Generate
// after the regular proteome is built; rng continues the generator
// stream.
func (pr *Proteome) generateWetlabTargets(rng *rand.Rand, addProtein func(name string, body []byte, comp Component, motifs []int)) {
	sampler := seq.NewSampler(seq.YeastComposition())
	p := pr.Params
	for k := 0; k < p.WetlabTargets; k++ {
		mStar := pr.WetlabTargetMotif(k)
		cStar := mStar + 1
		name := fmt.Sprintf("WLT%03dW", k)
		if k < len(PaperWetlabNames) {
			name = PaperWetlabNames[k]
		}
		mk := func(host string, motif int, comp Component) {
			length := p.MinLen + rng.Intn(p.MaxLen-p.MinLen+1)
			body := []byte(seq.Random(rng, host, length, seq.YeastComposition()).Residues())
			inst := seq.Mutate(rng, pr.motifs[motif], p.MotifMutRate, sampler)
			off := rng.Intn(length - p.MotifLen + 1)
			copy(body[off:], inst.Residues())
			addProtein(host, body, comp, []int{motif})
		}
		// Target: cytoplasmic (criterion 1), carries m*.
		mk(name, mStar, Cytoplasm)
		// Decoy second m* carrier in another compartment.
		mk(fmt.Sprintf("WLD%03d%c", k, "WC"[k%2]), mStar, Nucleus)
		// Complement partners, mono-motif.
		for j := 0; j < wetlabPartners; j++ {
			mk(fmt.Sprintf("WLP%01d%02d%c", k, j, "WC"[j%2]), cStar, Component(rng.Intn(int(NumComponents))))
		}
	}
}
