package yeastgen

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestWetlabTargetsGenerated(t *testing.T) {
	pr := genTest(t)
	ids := pr.WetlabTargetIDs()
	if len(ids) != TestParams().WetlabTargets {
		t.Fatalf("got %d wet-lab targets", len(ids))
	}
	id := ids[0]
	if pr.Proteins[id].Name() != PaperWetlabNames[0] {
		t.Errorf("wet-lab target 0 named %q, want %q", pr.Proteins[id].Name(), PaperWetlabNames[0])
	}
	if pr.Component(id) != Cytoplasm {
		t.Error("wet-lab target not cytoplasmic (paper criterion 1)")
	}
	ms := pr.Motifs(id)
	if len(ms) != 1 || ms[0] != pr.WetlabTargetMotif(0) {
		t.Errorf("wet-lab target motifs %v, want reserved motif %d", ms, pr.WetlabTargetMotif(0))
	}
}

func TestWetlabReservedMotifsUnused(t *testing.T) {
	pr := genTest(t)
	p := TestParams()
	reservedStart := p.NumMotifs - 2*p.WetlabTargets
	// Regular proteins (the first NumProteins) must never draw reserved
	// motifs.
	for i := 0; i < p.NumProteins; i++ {
		for _, m := range pr.Motifs(i) {
			if m >= reservedStart {
				t.Fatalf("regular protein %d carries reserved motif %d", i, m)
			}
		}
	}
}

func TestWetlabTargetNeighborhood(t *testing.T) {
	pr := genTest(t)
	id := pr.WetlabTargetIDs()[0]
	// The target must interact with several complement partners (the
	// "well-studied" criterion) so PIPE has evidence to mine.
	if deg := pr.Graph.Degree(id); deg < 2 {
		t.Errorf("wet-lab target degree %d, want >= 2", deg)
	}
	// All neighbors must be complement-carrier partners (mono-motif,
	// carrying the reserved complement).
	cStar := pr.ComplementOf(pr.WetlabTargetMotif(0))
	for _, nb := range pr.Graph.Neighbors(id) {
		ms := pr.Motifs(int(nb))
		if len(ms) != 1 || ms[0] != cStar {
			// Noise edges may touch the target; tolerate but count.
			continue
		}
	}
}

func TestWetlabDesignedBinderTrulyBinds(t *testing.T) {
	pr := genTest(t)
	id := pr.WetlabTargetIDs()[0]
	cStar := pr.ComplementOf(pr.WetlabTargetMotif(0))
	rng := rand.New(rand.NewSource(11))
	body := []byte(seq.Random(rng, "binder", 140, seq.YeastComposition()).Residues())
	copy(body[50:], pr.MasterMotif(cStar).Residues())
	binder := seq.MustNew("binder", string(body))
	if !pr.TrulyBinds(binder, id) {
		t.Fatal("complement-carrying binder does not truly bind wet-lab target")
	}
	// It must NOT bind unrelated cytoplasmic proteins.
	bound := 0
	for _, other := range pr.ComponentMembers(Cytoplasm) {
		if other != id && pr.TrulyBinds(binder, other) {
			bound++
		}
	}
	if bound > 0 {
		t.Errorf("binder truly binds %d unrelated cytoplasmic proteins", bound)
	}
}

func TestWetlabZeroTargets(t *testing.T) {
	p := TestParams()
	p.WetlabTargets = 0
	pr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.WetlabTargetIDs()) != 0 {
		t.Error("unexpected wet-lab targets")
	}
	if len(pr.Proteins) != p.NumProteins {
		t.Errorf("got %d proteins, want exactly %d", len(pr.Proteins), p.NumProteins)
	}
}

func TestWetlabTooManyTargets(t *testing.T) {
	p := TestParams()
	p.WetlabTargets = p.NumMotifs / 2
	if _, err := Generate(p); err == nil {
		t.Error("excessive wet-lab targets accepted")
	}
}
