package yeastgen

import (
	"math/rand"

	"repro/internal/seq"
)

// motifMatchFrac is the fraction of a master motif's PAM120 self-score a
// fragment must reach for binding to begin. Planted instances (8%
// mutation, ~0.78) comfortably clear it; random background (~0.1 per
// specific motif) does not. Binding strength grows linearly above the
// onset, so partially faithful designed motifs give the partial
// inhibition the paper's colony counts show.
const motifMatchFrac = 0.4

// MotifAffinity returns, for each motif m, the best normalized PAM120
// similarity (aligned score / motif self-score, clamped to [0,1])
// between s and the master motif over every ungapped alignment,
// including partial overlaps at the sequence ends (overhanging motif
// columns contribute nothing, so a sequence carrying 80%% of a motif at
// its very start still registers ~80%% affinity — partial motifs bind
// partially). Values near 1 mean s carries a near-exact full copy.
func (pr *Proteome) MotifAffinity(s seq.Sequence) []float64 {
	out := make([]float64, len(pr.motifs))
	sIdx := s.Indices()
	for m, motif := range pr.motifs {
		mIdx := motif.Indices()
		w := motif.Len()
		self := pr.oracleMatrix.WindowScoreIdx(mIdx, 0, mIdx, 0, w)
		if self <= 0 || s.Len() == 0 {
			continue
		}
		best := 0.0
		// offset is the position of motif column 0 relative to s; negative
		// offsets hang off the left end, large ones off the right.
		for off := -(w - 1); off < s.Len(); off++ {
			lo := 0
			if off < 0 {
				lo = -off
			}
			hi := w
			if off+w > s.Len() {
				hi = s.Len() - off
			}
			if hi-lo < w/2 {
				continue // require at least half the motif to overlap
			}
			score := 0
			for k := lo; k < hi; k++ {
				score += int(pr.oracleMatrix.ScoreIdx(int(sIdx[off+k]), int(mIdx[k])))
			}
			if v := float64(score) / float64(self); v > best {
				best = v
			}
		}
		if best < 0 {
			best = 0
		}
		if best > 1 {
			best = 1
		}
		out[m] = best
	}
	return out
}

// BindingStrength is the ground-truth oracle: the physical binding
// strength in [0,1] between an arbitrary sequence s and natural protein
// id. It is the best "lock-and-key" fit — over the motifs planted in the
// protein, the affinity of s for the complementary motif, rescaled so
// that affinities below the match threshold contribute nothing.
//
// The wet-lab simulator consumes this, so InSiPS is validated against a
// signal it never observed directly (PIPE sees only the interaction
// graph, not the motif vocabulary).
func (pr *Proteome) BindingStrength(s seq.Sequence, id int) float64 {
	aff := pr.MotifAffinity(s)
	best := 0.0
	for _, m := range pr.motifOf[id] {
		a := aff[pr.ComplementOf(m)]
		if a > best {
			best = a
		}
	}
	if best <= motifMatchFrac {
		return 0
	}
	return (best - motifMatchFrac) / (1 - motifMatchFrac)
}

// TrulyBinds reports whether s carries a motif complementary to one of
// protein id's motifs at match fidelity.
func (pr *Proteome) TrulyBinds(s seq.Sequence, id int) bool {
	return pr.BindingStrength(s, id) > 0
}

// Difficulty classes for the Figure 3 benchmark. The paper's five test
// sequences span "easiest" (few matching proteins in the PIPE database,
// little work) to "hardest" (many matches, much work).
type Difficulty int

// Difficulty classes, easiest first, named after the paper's sequences.
const (
	DifficultyEasiest Difficulty = iota // YPL108W: no shared motifs
	DifficultyEasy                      // YPL158C: one rare motif
	DifficultyMedium                    // YJR151C: one popular motif
	DifficultyHard                      // YCL019W: two popular motifs
	DifficultyHardest                   // YHR214C-B: four popular motifs
	NumDifficulties
)

// PaperName returns the sequence name the paper uses for this class.
func (d Difficulty) PaperName() string {
	switch d {
	case DifficultyEasiest:
		return "YPL108W"
	case DifficultyEasy:
		return "YPL158C"
	case DifficultyMedium:
		return "YJR151C"
	case DifficultyHard:
		return "YCL019W"
	case DifficultyHardest:
		return "YHR214C-B"
	}
	return "unknown"
}

// DifficultySequence builds a query sequence of the given difficulty:
// harder classes embed more, and more popular, motifs, so they match more
// database proteins and give PIPE more co-occurrences to count.
func (pr *Proteome) DifficultySequence(rng *rand.Rand, d Difficulty, length int) seq.Sequence {
	name := d.PaperName()
	if length < pr.Params.MotifLen*4 {
		length = pr.Params.MotifLen * 4
	}
	body := []byte(seq.Random(rng, name, length, seq.YeastComposition()).Residues())
	var plant []int
	popular := func(k int) int { return k % 4 } // motif IDs 0..3 are the Zipf head
	rare := pr.Params.NumMotifs - 2
	switch d {
	case DifficultyEasiest:
		// no motifs
	case DifficultyEasy:
		plant = []int{rare}
	case DifficultyMedium:
		plant = []int{popular(0)}
	case DifficultyHard:
		plant = []int{popular(0), popular(1)}
	case DifficultyHardest:
		plant = []int{popular(0), popular(1), popular(2), popular(3)}
	}
	sampler := seq.NewSampler(seq.YeastComposition())
	block := length / 4
	for s, m := range plant {
		inst := seq.Mutate(rng, pr.motifs[m], pr.Params.MotifMutRate, sampler)
		off := s*block + rng.Intn(block-pr.Params.MotifLen+1)
		copy(body[off:], inst.Residues())
	}
	return seq.MustNew(name, string(body))
}
