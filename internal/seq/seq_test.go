package seq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAlphabetRoundTrip(t *testing.T) {
	if NumAminoAcids != 20 {
		t.Fatalf("NumAminoAcids = %d, want 20", NumAminoAcids)
	}
	for i := 0; i < NumAminoAcids; i++ {
		c := Letter(i)
		if got := Index(c); got != i {
			t.Errorf("Index(Letter(%d)) = %d", i, got)
		}
		// Lower case maps to the same index.
		if got := Index(c + 'a' - 'A'); got != i {
			t.Errorf("lower-case Index(%c) = %d, want %d", c+'a'-'A', got, i)
		}
	}
}

func TestIndexInvalid(t *testing.T) {
	for _, c := range []byte{'B', 'J', 'O', 'U', 'X', 'Z', '*', '-', ' ', 0} {
		if Index(c) != -1 {
			t.Errorf("Index(%q) = %d, want -1", c, Index(c))
		}
	}
}

func TestLetterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Letter(-1) did not panic")
		}
	}()
	Letter(-1)
}

func TestNewValidation(t *testing.T) {
	s, err := New("P1", "acdefg")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Residues() != "ACDEFG" {
		t.Errorf("Residues = %q, want upper-cased", s.Residues())
	}
	_, errX := New("P2", "ACDX")
	if errX == nil {
		t.Fatal("New accepted invalid residue X")
	}
	if !strings.Contains(errX.Error(), "position 3") {
		t.Error("error does not name offending position")
	}
}

func TestValid(t *testing.T) {
	if !Valid("ARNDCQEGHILKMFPSTWYV") {
		t.Error("Valid rejected the full alphabet")
	}
	if Valid("ABC") {
		t.Error("Valid accepted B")
	}
	if !Valid("") {
		t.Error("Valid rejected empty string")
	}
}

func TestSequenceAccessors(t *testing.T) {
	s := MustNew("YAL001C", "MKTAYIAK")
	if s.Name() != "YAL001C" || s.Len() != 8 {
		t.Fatalf("accessors: %v %d", s.Name(), s.Len())
	}
	if s.At(0) != 'M' || s.At(7) != 'K' {
		t.Error("At wrong")
	}
	if s.Window(2, 3) != "TAY" {
		t.Errorf("Window = %q", s.Window(2, 3))
	}
	if s.IndexAt(0) != Index('M') {
		t.Error("IndexAt wrong")
	}
	if got := s.WithName("X").Name(); got != "X" {
		t.Errorf("WithName = %q", got)
	}
	if s.String() != "YAL001C (8 aa)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestNumWindows(t *testing.T) {
	s := MustNew("p", "AAAAA")
	cases := []struct{ w, want int }{{1, 5}, {2, 4}, {5, 1}, {6, 0}, {100, 0}}
	for _, c := range cases {
		if got := s.NumWindows(c.w); got != c.want {
			t.Errorf("NumWindows(%d) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestIndices(t *testing.T) {
	s := MustNew("p", "AR")
	idx := s.Indices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("Indices = %v", idx)
	}
}

func TestCompositionNormalize(t *testing.T) {
	c := YeastComposition().Normalize()
	var sum float64
	for _, v := range c {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("normalized sum = %f", sum)
	}
	var zero Composition
	n := zero.Normalize()
	for _, v := range n {
		if v != 1.0/20 {
			t.Fatalf("zero composition normalized to %v", n)
		}
	}
}

func TestSamplerRespectsComposition(t *testing.T) {
	var c Composition
	c[Index('A')] = 3
	c[Index('W')] = 1
	rng := rand.New(rand.NewSource(1))
	s := NewSampler(c)
	counts := map[byte]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.Draw(rng)]++
	}
	if len(counts) != 2 {
		t.Fatalf("sampler drew letters outside support: %v", counts)
	}
	frac := float64(counts['A']) / n
	if frac < 0.72 || frac > 0.78 {
		t.Errorf("P(A) = %f, want ~0.75", frac)
	}
}

func TestRandomSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := Random(rng, "rand1", 300, UniformComposition())
	if s.Len() != 300 || s.Name() != "rand1" {
		t.Fatalf("Random: %v", s)
	}
	if !Valid(s.Residues()) {
		t.Error("Random produced invalid residues")
	}
}

func TestRandomDeterministicUnderSeed(t *testing.T) {
	a := Random(rand.New(rand.NewSource(42)), "a", 100, YeastComposition())
	b := Random(rand.New(rand.NewSource(42)), "b", 100, YeastComposition())
	if a.Residues() != b.Residues() {
		t.Error("same seed produced different sequences")
	}
	c := Random(rand.New(rand.NewSource(43)), "c", 100, YeastComposition())
	if a.Residues() == c.Residues() {
		t.Error("different seeds produced identical sequences")
	}
}

func TestMutateRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sampler := NewSampler(UniformComposition())
	s := Random(rng, "base", 2000, UniformComposition())
	m := Mutate(rng, s, 0.05, sampler)
	if m.Len() != s.Len() {
		t.Fatal("Mutate changed length")
	}
	d := Hamming(s, m)
	// Expected changed fraction is 0.05 * 19/20 = 0.0475.
	if d < 40 || d > 160 {
		t.Errorf("Hamming after 5%% mutation of 2000 = %d", d)
	}
	z := Mutate(rng, s, 0, sampler)
	if Hamming(s, z) != 0 {
		t.Error("zero-rate mutation changed residues")
	}
}

func TestCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := MustNew("a", strings.Repeat("A", 50))
	b := MustNew("b", strings.Repeat("V", 50))
	x, y := Crossover(rng, a, b, 5)
	if x.Len() != 50 || y.Len() != 50 {
		t.Fatalf("crossover lengths %d %d", x.Len(), y.Len())
	}
	// x must be A-prefix then V-suffix with cut in [5,45).
	cut := strings.IndexByte(x.Residues(), 'V')
	if cut < 5 || cut >= 45 {
		t.Errorf("cut point %d outside margin", cut)
	}
	if x.Residues()[:cut] != strings.Repeat("A", cut) {
		t.Error("x prefix not from a")
	}
	if y.Residues() != strings.Repeat("V", cut)+strings.Repeat("A", 50-cut) {
		t.Error("y is not the complementary hybrid")
	}
}

func TestCrossoverTooShort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := MustNew("a", "AAAA")
	b := MustNew("b", "VVVV")
	x, y := Crossover(rng, a, b, 10)
	if x.Residues() != a.Residues() || y.Residues() != b.Residues() {
		t.Error("short-sequence crossover should return parents unchanged")
	}
}

func TestCrossoverUnequalLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := MustNew("a", strings.Repeat("A", 30))
	b := MustNew("b", strings.Repeat("V", 100))
	for i := 0; i < 50; i++ {
		x, y := Crossover(rng, a, b, 3)
		if x.Len()+y.Len() != 130 {
			t.Fatalf("total length changed: %d + %d", x.Len(), y.Len())
		}
		if !Valid(x.Residues()) || !Valid(y.Residues()) {
			t.Fatal("invalid hybrid")
		}
	}
}

func TestHamming(t *testing.T) {
	a := MustNew("a", "AAAA")
	b := MustNew("b", "AAVV")
	if Hamming(a, b) != 2 {
		t.Errorf("Hamming = %d, want 2", Hamming(a, b))
	}
	c := MustNew("c", "AAAAAA")
	if Hamming(a, c) != 2 { // 0 mismatches + 2 length diff
		t.Errorf("Hamming with length diff = %d, want 2", Hamming(a, c))
	}
	if Hamming(a, a) != 0 {
		t.Error("self Hamming nonzero")
	}
}

// Property: crossover preserves multiset of residues when parents have
// equal length? Not true (tails swap), but total composition of the two
// children equals total composition of the two parents.
func TestCrossoverConservesComposition(t *testing.T) {
	f := func(seedRaw int64, la, lb uint8) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		na := 20 + int(la)%200
		nb := 20 + int(lb)%200
		a := Random(rng, "a", na, YeastComposition())
		b := Random(rng, "b", nb, YeastComposition())
		x, y := Crossover(rng, a, b, 5)
		before := Of(a)
		bb := Of(b)
		for i := range before {
			before[i] += bb[i]
		}
		after := Of(x)
		ay := Of(y)
		for i := range after {
			after[i] += ay[i]
		}
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Mutate with rate 1 draws every residue from the sampler, so
// result is always valid and same length.
func TestMutatePropertyValid(t *testing.T) {
	sampler := NewSampler(YeastComposition())
	f := func(seedRaw int64, rate float64, n uint8) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		r := rate - float64(int(rate)) // into [0,1)
		if r < 0 {
			r = -r
		}
		s := Random(rng, "s", 1+int(n), YeastComposition())
		m := Mutate(rng, s, r, sampler)
		return m.Len() == s.Len() && Valid(m.Residues())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
