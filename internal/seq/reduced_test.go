package seq

import "testing"

func TestReducedAlphabetsCoverAll(t *testing.T) {
	for _, r := range []*ReducedAlphabet{Murphy10(), Dayhoff6(), Identity20()} {
		for i := 0; i < NumAminoAcids; i++ {
			c := r.Class(i)
			if int(c) >= r.Classes() {
				t.Errorf("%s: class(%c) = %d out of range %d", r.Name(), Letter(i), c, r.Classes())
			}
		}
	}
}

func TestReducedClassCounts(t *testing.T) {
	if got := Murphy10().Classes(); got != 10 {
		t.Errorf("Murphy10 classes = %d", got)
	}
	if got := Dayhoff6().Classes(); got != 6 {
		t.Errorf("Dayhoff6 classes = %d", got)
	}
	if got := Identity20().Classes(); got != 20 {
		t.Errorf("Identity20 classes = %d", got)
	}
}

func TestReducedGroupsBiochemical(t *testing.T) {
	m := Murphy10()
	// L, V, I, M are one hydrophobic class.
	if m.ClassOf('L') != m.ClassOf('V') || m.ClassOf('I') != m.ClassOf('M') || m.ClassOf('L') != m.ClassOf('I') {
		t.Error("Murphy10: LVIM not grouped")
	}
	// K and R basic together; E and D acidic/amide together.
	if m.ClassOf('K') != m.ClassOf('R') {
		t.Error("Murphy10: KR not grouped")
	}
	if m.ClassOf('E') != m.ClassOf('D') {
		t.Error("Murphy10: ED not grouped")
	}
	// C alone.
	for i := 0; i < NumAminoAcids; i++ {
		if Letter(i) != 'C' && m.Class(i) == m.ClassOf('C') {
			t.Errorf("Murphy10: %c shares class with C", Letter(i))
		}
	}
}

func TestClassOfInvalid(t *testing.T) {
	if Murphy10().ClassOf('X') != 255 {
		t.Error("ClassOf invalid != 255")
	}
}

func TestIdentityDistinct(t *testing.T) {
	id := Identity20()
	seen := map[uint8]bool{}
	for i := 0; i < NumAminoAcids; i++ {
		c := id.Class(i)
		if seen[c] {
			t.Fatalf("Identity20 reuses class %d", c)
		}
		seen[c] = true
	}
}

func TestReduceKmer(t *testing.T) {
	m := Murphy10()
	// Same reduced classes => same key even for different residues.
	k1, ok1 := m.ReduceKmer("LVIM", 0, 4)
	k2, ok2 := m.ReduceKmer("VLMI", 0, 4)
	if !ok1 || !ok2 {
		t.Fatal("ReduceKmer failed on valid input")
	}
	if k1 != k2 {
		t.Error("LVIM and VLMI should share a Murphy10 seed key")
	}
	k3, _ := m.ReduceKmer("LVIK", 0, 4)
	if k3 == k1 {
		t.Error("distinct classes produced equal keys")
	}
	if _, ok := m.ReduceKmer("LXIM", 0, 4); ok {
		t.Error("ReduceKmer accepted invalid residue")
	}
}

func TestReduceKmerPositional(t *testing.T) {
	id := Identity20()
	s := "ARNDA"
	kA, _ := id.ReduceKmer(s, 0, 2) // AR
	kB, _ := id.ReduceKmer(s, 3, 2) // DA
	if kA == kB {
		t.Error("different windows produced identical identity keys")
	}
	// Key is deterministic.
	kA2, _ := id.ReduceKmer(s, 0, 2)
	if kA != kA2 {
		t.Error("ReduceKmer not deterministic")
	}
}
