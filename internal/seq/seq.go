// Package seq provides the protein-sequence substrate used throughout
// InSiPS-Go: the 20-letter amino-acid alphabet, validated sequence values,
// random sequence generation with configurable residue composition, and
// reduced alphabets used for similarity-search seeding.
package seq

import (
	"fmt"
	"math/rand"
	"strings"
)

// Alphabet is the canonical ordering of the 20 standard amino acids.
// It matches the row/column order of the PAM and BLOSUM matrices in
// package submat.
const Alphabet = "ARNDCQEGHILKMFPSTWYV"

// NumAminoAcids is the size of the standard amino-acid alphabet.
const NumAminoAcids = len(Alphabet)

// aaIndex maps an amino-acid letter (upper case) to its index in Alphabet,
// or -1 for any other byte.
var aaIndex [256]int8

func init() {
	for i := range aaIndex {
		aaIndex[i] = -1
	}
	for i := 0; i < len(Alphabet); i++ {
		aaIndex[Alphabet[i]] = int8(i)
		aaIndex[Alphabet[i]+'a'-'A'] = int8(i)
	}
}

// Index returns the alphabet index of the amino acid letter c, or -1 if c
// is not one of the 20 standard amino acids (case-insensitive).
func Index(c byte) int { return int(aaIndex[c]) }

// Letter returns the amino-acid letter for alphabet index i.
// It panics if i is out of range.
func Letter(i int) byte {
	if i < 0 || i >= NumAminoAcids {
		panic(fmt.Sprintf("seq: amino acid index %d out of range", i))
	}
	return Alphabet[i]
}

// Valid reports whether every byte of s is a standard amino-acid letter.
func Valid(s string) bool {
	for i := 0; i < len(s); i++ {
		if aaIndex[s[i]] < 0 {
			return false
		}
	}
	return true
}

// Sequence is an immutable protein sequence: a name plus a validated,
// upper-case residue string.
type Sequence struct {
	name     string
	residues string
}

// New creates a Sequence after validating and upper-casing residues.
// It returns an error naming the first invalid byte, if any.
func New(name, residues string) (Sequence, error) {
	up := strings.ToUpper(residues)
	for i := 0; i < len(up); i++ {
		if aaIndex[up[i]] < 0 {
			return Sequence{}, fmt.Errorf("seq: %q position %d: invalid amino acid %q", name, i, up[i])
		}
	}
	return Sequence{name: name, residues: up}, nil
}

// MustNew is New but panics on invalid input. Intended for literals in
// tests and examples.
func MustNew(name, residues string) Sequence {
	s, err := New(name, residues)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the protein's identifier (e.g. a systematic yeast name).
func (s Sequence) Name() string { return s.name }

// Residues returns the residue string.
func (s Sequence) Residues() string { return s.residues }

// Len returns the number of residues.
func (s Sequence) Len() int { return len(s.residues) }

// At returns the residue at position i.
func (s Sequence) At(i int) byte { return s.residues[i] }

// IndexAt returns the alphabet index of the residue at position i.
func (s Sequence) IndexAt(i int) int { return int(aaIndex[s.residues[i]]) }

// Window returns the length-w window starting at position i as a string.
// It panics if the window falls outside the sequence.
func (s Sequence) Window(i, w int) string { return s.residues[i : i+w] }

// NumWindows returns the number of length-w windows in s
// (zero when the sequence is shorter than w).
func (s Sequence) NumWindows(w int) int {
	if s.Len() < w {
		return 0
	}
	return s.Len() - w + 1
}

// WithName returns a copy of s renamed to name.
func (s Sequence) WithName(name string) Sequence {
	return Sequence{name: name, residues: s.residues}
}

// String implements fmt.Stringer as "name (len aa)".
func (s Sequence) String() string {
	return fmt.Sprintf("%s (%d aa)", s.name, s.Len())
}

// Indices returns the residue string converted to alphabet indices.
// The returned slice is freshly allocated.
func (s Sequence) Indices() []int8 {
	idx := make([]int8, len(s.residues))
	for i := 0; i < len(s.residues); i++ {
		idx[i] = aaIndex[s.residues[i]]
	}
	return idx
}

// Composition holds per-amino-acid frequencies indexed like Alphabet.
// Frequencies need not be normalized; generation normalizes internally.
type Composition [NumAminoAcids]float64

// UniformComposition returns a composition assigning equal weight to each
// amino acid.
func UniformComposition() Composition {
	var c Composition
	for i := range c {
		c[i] = 1
	}
	return c
}

// YeastComposition returns approximate amino-acid frequencies of the
// S. cerevisiae proteome (per mille, from SGD codon-usage statistics).
// Used by the synthetic proteome generator so random sequences have a
// realistic residue mix.
func YeastComposition() Composition {
	// Order: A R N D C Q E G H I L K M F P S T W Y V
	return Composition{
		55, 44, 61, 58, 13, 39, 64, 50, 22, 65,
		95, 73, 21, 45, 44, 90, 59, 10, 34, 56,
	}
}

// Normalize returns a copy of c scaled to sum to 1. A zero composition
// normalizes to uniform.
func (c Composition) Normalize() Composition {
	var sum float64
	for _, v := range c {
		sum += v
	}
	if sum <= 0 {
		return UniformComposition().Normalize()
	}
	var out Composition
	for i, v := range c {
		out[i] = v / sum
	}
	return out
}

// Of computes the empirical composition of s.
func Of(s Sequence) Composition {
	var c Composition
	for i := 0; i < s.Len(); i++ {
		c[s.IndexAt(i)]++
	}
	return c
}

// Sampler draws amino acids from a fixed composition using a cumulative
// table. It is safe for concurrent use as long as each goroutine supplies
// its own *rand.Rand.
type Sampler struct {
	cum [NumAminoAcids]float64
}

// NewSampler builds a sampler for composition c.
func NewSampler(c Composition) *Sampler {
	n := c.Normalize()
	var s Sampler
	acc := 0.0
	for i, v := range n {
		acc += v
		s.cum[i] = acc
	}
	s.cum[NumAminoAcids-1] = 1 // guard against rounding
	return &s
}

// Draw returns a random amino-acid letter.
func (s *Sampler) Draw(rng *rand.Rand) byte {
	u := rng.Float64()
	for i, c := range s.cum {
		if u <= c {
			return Alphabet[i]
		}
	}
	return Alphabet[NumAminoAcids-1]
}

// Random generates a random sequence of length n drawn from composition c.
func Random(rng *rand.Rand, name string, n int, c Composition) Sequence {
	sampler := NewSampler(c)
	return RandomFrom(rng, name, n, sampler)
}

// RandomFrom is Random with a pre-built sampler, avoiding repeated
// cumulative-table construction in hot loops.
func RandomFrom(rng *rand.Rand, name string, n int, sampler *Sampler) Sequence {
	b := make([]byte, n)
	for i := range b {
		b[i] = sampler.Draw(rng)
	}
	return Sequence{name: name, residues: string(b)}
}

// Mutate returns a copy of s in which each residue is independently
// replaced, with probability rate, by a random amino acid drawn from the
// sampler. This is the paper's p_mutate_aa spot mutation.
func Mutate(rng *rand.Rand, s Sequence, rate float64, sampler *Sampler) Sequence {
	b := []byte(s.residues)
	for i := range b {
		if rng.Float64() < rate {
			b[i] = sampler.Draw(rng)
		}
	}
	return Sequence{name: s.name, residues: string(b)}
}

// Crossover cuts a and b at a shared random cut point (kept at least
// margin residues away from either end of both sequences) and exchanges
// tails, returning the two hybrids. If the sequences are too short for the
// margin the parents are returned unchanged.
func Crossover(rng *rand.Rand, a, b Sequence, margin int) (Sequence, Sequence) {
	maxCut := min(a.Len(), b.Len()) - margin
	if margin < 1 || maxCut <= margin {
		return a, b
	}
	cut := margin + rng.Intn(maxCut-margin)
	ab := a.residues[:cut] + b.residues[cut:]
	ba := b.residues[:cut] + a.residues[cut:]
	return Sequence{name: a.name, residues: ab}, Sequence{name: b.name, residues: ba}
}

// Hamming returns the number of positions at which a and b differ,
// plus the absolute length difference.
func Hamming(a, b Sequence) int {
	n := min(a.Len(), b.Len())
	d := a.Len() + b.Len() - 2*n
	for i := 0; i < n; i++ {
		if a.residues[i] != b.residues[i] {
			d++
		}
	}
	return d
}
