package seq

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadFASTA parses FASTA records from r. Header lines start with '>'; the
// first whitespace-delimited token becomes the sequence name. Residue lines
// are concatenated and validated. Blank lines are ignored.
func ReadFASTA(r io.Reader) ([]Sequence, error) {
	var (
		out     []Sequence
		name    string
		haveRec bool
		body    strings.Builder
	)
	flush := func() error {
		if !haveRec {
			return nil
		}
		s, err := New(name, body.String())
		if err != nil {
			return err
		}
		out = append(out, s)
		body.Reset()
		return nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			fields := strings.Fields(text[1:])
			if len(fields) == 0 {
				return nil, fmt.Errorf("seq: line %d: empty FASTA header", line)
			}
			name = fields[0]
			haveRec = true
			continue
		}
		if !haveRec {
			return nil, fmt.Errorf("seq: line %d: residue data before first header", line)
		}
		body.WriteString(text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: reading FASTA: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFASTA writes sequences to w in FASTA format, wrapping residue lines
// at width characters (60 if width <= 0).
func WriteFASTA(w io.Writer, seqs []Sequence, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Name()); err != nil {
			return err
		}
		res := s.Residues()
		for start := 0; start < len(res); start += width {
			end := min(start+width, len(res))
			if _, err := fmt.Fprintf(bw, "%s\n", res[start:end]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadFASTAFile reads a FASTA file from disk.
func LoadFASTAFile(path string) ([]Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFASTA(f)
}

// SaveFASTAFile writes sequences to a FASTA file on disk.
func SaveFASTAFile(path string, seqs []Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFASTA(f, seqs, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
