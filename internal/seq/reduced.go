package seq

// ReducedAlphabet maps the 20 amino acids onto a smaller set of classes of
// biochemically similar residues. The similarity index (package simindex)
// keys its k-mer seeds on reduced classes so that conservative
// substitutions (which PAM120 scores positively) still share seeds.
type ReducedAlphabet struct {
	name    string
	classes int
	class   [NumAminoAcids]uint8
}

// Name returns the alphabet's identifier.
func (r *ReducedAlphabet) Name() string { return r.name }

// Classes returns the number of residue classes.
func (r *ReducedAlphabet) Classes() int { return r.classes }

// Class returns the class of amino-acid index i.
func (r *ReducedAlphabet) Class(i int) uint8 { return r.class[i] }

// ClassOf returns the class of amino-acid letter c, or 255 if c is not a
// standard amino acid.
func (r *ReducedAlphabet) ClassOf(c byte) uint8 {
	i := Index(c)
	if i < 0 {
		return 255
	}
	return r.class[i]
}

// newReduced builds a ReducedAlphabet from groups of residue letters.
func newReduced(name string, groups []string) *ReducedAlphabet {
	r := &ReducedAlphabet{name: name, classes: len(groups)}
	seen := 0
	for g, letters := range groups {
		for i := 0; i < len(letters); i++ {
			r.class[Index(letters[i])] = uint8(g)
			seen++
		}
	}
	if seen != NumAminoAcids {
		panic("seq: reduced alphabet does not cover all amino acids")
	}
	return r
}

// Murphy10 returns Murphy et al.'s 10-class reduction, a good balance of
// sensitivity and selectivity for seeding.
func Murphy10() *ReducedAlphabet {
	return newReduced("murphy10", []string{
		"LVIM", "C", "A", "G", "ST", "P", "FYW", "EDNQ", "KR", "H",
	})
}

// Dayhoff6 returns the classic 6-class Dayhoff grouping (more sensitive,
// less selective seeds than Murphy10).
func Dayhoff6() *ReducedAlphabet {
	return newReduced("dayhoff6", []string{
		"AGPST", "C", "DENQ", "FWY", "HKR", "ILMV",
	})
}

// Identity20 returns the trivial 20-class alphabet (exact-match seeds).
func Identity20() *ReducedAlphabet {
	groups := make([]string, NumAminoAcids)
	for i := 0; i < NumAminoAcids; i++ {
		groups[i] = string(Alphabet[i])
	}
	return newReduced("identity20", groups)
}

// ReduceKmer packs the reduced classes of the k residues starting at
// position pos of s into a single uint64 key (base = number of classes).
// It returns ok=false if any residue is invalid. k must satisfy
// classes^k <= 2^64, which holds for all alphabets here with k <= 12.
func (r *ReducedAlphabet) ReduceKmer(s string, pos, k int) (key uint64, ok bool) {
	base := uint64(r.classes)
	for i := 0; i < k; i++ {
		c := r.ClassOf(s[pos+i])
		if c == 255 {
			return 0, false
		}
		key = key*base + uint64(c)
	}
	return key, true
}
