package seq

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadFASTABasic(t *testing.T) {
	in := ">P1 some description\nMKTAY\nIAK\n\n>P2\nAAAA\n"
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records, want 2", len(seqs))
	}
	if seqs[0].Name() != "P1" || seqs[0].Residues() != "MKTAYIAK" {
		t.Errorf("record 0 = %v %q", seqs[0].Name(), seqs[0].Residues())
	}
	if seqs[1].Name() != "P2" || seqs[1].Residues() != "AAAA" {
		t.Errorf("record 1 = %v %q", seqs[1].Name(), seqs[1].Residues())
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []string{
		"MKTAY\n",        // residues before header
		">\nMKTAY\n",     // empty header
		">P1\nMKTXXJ1\n", // invalid residue
	}
	for _, in := range cases {
		if _, err := ReadFASTA(strings.NewReader(in)); err == nil {
			t.Errorf("ReadFASTA(%q) succeeded, want error", in)
		}
	}
}

func TestReadFASTAEmpty(t *testing.T) {
	seqs, err := ReadFASTA(strings.NewReader(""))
	if err != nil || len(seqs) != 0 {
		t.Errorf("empty input: %v, %d records", err, len(seqs))
	}
}

func TestWriteFASTAWraps(t *testing.T) {
	s := MustNew("long", strings.Repeat("ACDEF", 30)) // 150 aa
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, []Sequence{s}, 60); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 60 + 60 + 30
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if len(lines[1]) != 60 || len(lines[3]) != 30 {
		t.Errorf("wrap widths %d/%d", len(lines[1]), len(lines[3]))
	}
}

func TestFASTARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var seqs []Sequence
	for i := 0; i < 20; i++ {
		seqs = append(seqs, Random(rng, names(i), 10+rng.Intn(300), YeastComposition()))
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, seqs, 0); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(seqs) {
		t.Fatalf("round trip count %d != %d", len(back), len(seqs))
	}
	for i := range seqs {
		if back[i].Name() != seqs[i].Name() || back[i].Residues() != seqs[i].Residues() {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func names(i int) string { return string(rune('A'+i%26)) + "seq" }

func TestFASTAFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prot.fasta")
	seqs := []Sequence{MustNew("X1", "MKTAY"), MustNew("X2", "AAAA")}
	if err := SaveFASTAFile(path, seqs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFASTAFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Residues() != "MKTAY" {
		t.Errorf("file round trip: %v", back)
	}
	if _, err := LoadFASTAFile(filepath.Join(dir, "missing.fasta")); err == nil {
		t.Error("loading missing file succeeded")
	}
}
