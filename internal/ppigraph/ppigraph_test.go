package ppigraph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildTriangle() *Graph {
	b := NewBuilder()
	b.AddEdge("A", "B")
	b.AddEdge("B", "C")
	b.AddEdge("C", "A")
	b.AddProtein("Lonely")
	return b.Build()
}

func TestBuildBasics(t *testing.T) {
	g := buildTriangle()
	if g.NumProteins() != 4 {
		t.Fatalf("NumProteins = %d", g.NumProteins())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	idA, ok := g.ID("A")
	if !ok {
		t.Fatal("A not found")
	}
	if g.Name(idA) != "A" {
		t.Error("Name/ID mismatch")
	}
	if _, ok := g.ID("Z"); ok {
		t.Error("found nonexistent protein")
	}
}

func TestDuplicateAndSelfEdges(t *testing.T) {
	b := NewBuilder()
	b.AddEdge("A", "B")
	b.AddEdge("B", "A") // duplicate reversed
	b.AddEdge("A", "B") // duplicate
	b.AddEdge("A", "A") // self-loop
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	idA, _ := g.ID("A")
	if g.Degree(idA) != 1 {
		t.Errorf("Degree(A) = %d, want 1", g.Degree(idA))
	}
}

func TestAddProteinIdempotent(t *testing.T) {
	b := NewBuilder()
	id1 := b.AddProtein("X")
	id2 := b.AddProtein("X")
	if id1 != id2 {
		t.Error("re-adding a protein produced a new ID")
	}
}

func TestHasEdgeAndNeighbors(t *testing.T) {
	g := buildTriangle()
	a, _ := g.ID("A")
	bID, _ := g.ID("B")
	l, _ := g.ID("Lonely")
	if !g.HasEdge(a, bID) || !g.HasEdge(bID, a) {
		t.Error("HasEdge(A,B) false")
	}
	if g.HasEdge(a, l) {
		t.Error("HasEdge(A,Lonely) true")
	}
	if g.Degree(l) != 0 || len(g.Neighbors(l)) != 0 {
		t.Error("Lonely has neighbors")
	}
	nb := g.Neighbors(a)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Error("neighbors not sorted")
		}
	}
}

func TestEdgesIterationAndEarlyStop(t *testing.T) {
	g := buildTriangle()
	count := 0
	g.Edges(func(a, b int) bool {
		if a >= b {
			t.Errorf("edge order violated: %d >= %d", a, b)
		}
		count++
		return true
	})
	if count != 3 {
		t.Errorf("iterated %d edges, want 3", count)
	}
	count = 0
	g.Edges(func(a, b int) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop iterated %d edges", count)
	}
}

func TestStats(t *testing.T) {
	g := buildTriangle()
	s := g.Stats()
	if s.Min != 0 || s.Max != 2 || s.Isolated != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Mean != 6.0/4 {
		t.Errorf("Mean = %f", s.Mean)
	}
	empty := NewBuilder().Build()
	if es := empty.Stats(); es != (DegreeStats{}) {
		t.Errorf("empty Stats = %+v", es)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g := buildTriangle()
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumProteins() != g.NumProteins() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d", back.NumProteins(), back.NumEdges(), g.NumProteins(), g.NumEdges())
	}
	// Vertex IDs must round-trip exactly: pipe.New requires graph vertex i
	// to be proteome entry i, so a reload must not reshuffle IDs.
	for id := 0; id < g.NumProteins(); id++ {
		if back.Name(id) != g.Name(id) {
			t.Errorf("vertex %d: round trip renamed %q to %q", id, g.Name(id), back.Name(id))
		}
	}
	// Edge set must match by name.
	g.Edges(func(a, b int) bool {
		ba, ok1 := back.ID(g.Name(a))
		bb, ok2 := back.ID(g.Name(b))
		if !ok1 || !ok2 || !back.HasEdge(ba, bb) {
			t.Errorf("edge %s-%s lost in round trip", g.Name(a), g.Name(b))
		}
		return true
	})
	if _, ok := back.ID("Lonely"); !ok {
		t.Error("isolated vertex lost in round trip")
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("A\tB\tC\n")); err == nil {
		t.Error("accepted 3-field line")
	}
	g, err := ReadTSV(strings.NewReader("# a comment\n\nA\tB\n"))
	if err != nil {
		t.Fatalf("comment handling: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Error("comment line affected edges")
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := buildTriangle()
	path := t.TempDir() + "/g.tsv"
	if err := g.SaveTSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 3 {
		t.Error("file round trip lost edges")
	}
	if _, err := LoadTSVFile(path + ".missing"); err == nil {
		t.Error("loading missing file succeeded")
	}
}

// Property: for random graphs, HasEdge agrees with the edge list used to
// build the graph, and degrees sum to twice the edge count.
func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%50
		m := int(mRaw) % 100
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.AddProtein(fmt.Sprintf("P%03d", i))
		}
		type edge struct{ a, b int }
		want := map[edge]bool{}
		for i := 0; i < m; i++ {
			a, c := rng.Intn(n), rng.Intn(n)
			if a == c {
				continue
			}
			if a > c {
				a, c = c, a
			}
			b.AddEdgeID(a, c)
			want[edge{a, c}] = true
		}
		g := b.Build()
		if g.NumEdges() != len(want) {
			return false
		}
		degSum := 0
		for i := 0; i < n; i++ {
			degSum += g.Degree(i)
		}
		if degSum != 2*len(want) {
			return false
		}
		for e := range want {
			if !g.HasEdge(e.a, e.b) || !g.HasEdge(e.b, e.a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
