// Package ppigraph implements the known protein-protein interaction graph
// G that PIPE mines (Section 2.2 of the paper): every protein is a vertex
// and every experimentally validated interaction is an undirected edge.
// The graph is immutable once built; concurrent readers need no locking,
// which is what lets all PIPE worker threads share one copy (Section 2.3).
package ppigraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Graph is an undirected protein-interaction graph over proteins
// identified by dense integer IDs (assigned at Build time) with
// human-readable names.
type Graph struct {
	names    []string
	idByName map[string]int
	adj      [][]int32 // sorted neighbor lists
	numEdges int
}

// Builder accumulates proteins and interactions, then freezes them into a
// Graph. Duplicate edges and self-loops are dropped.
type Builder struct {
	names    []string
	idByName map[string]int
	edges    map[[2]int32]struct{}
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{idByName: make(map[string]int), edges: make(map[[2]int32]struct{})}
}

// AddProtein registers a protein name and returns its ID. Re-adding an
// existing name returns the existing ID.
func (b *Builder) AddProtein(name string) int {
	if id, ok := b.idByName[name]; ok {
		return id
	}
	id := len(b.names)
	b.names = append(b.names, name)
	b.idByName[name] = id
	return id
}

// AddEdge records an interaction between the named proteins, registering
// them if needed. Self-loops are ignored.
func (b *Builder) AddEdge(a, c string) {
	ia, ic := b.AddProtein(a), b.AddProtein(c)
	b.AddEdgeID(ia, ic)
}

// AddEdgeID records an interaction between two existing protein IDs.
func (b *Builder) AddEdgeID(ia, ic int) {
	if ia == ic {
		return
	}
	if ia > ic {
		ia, ic = ic, ia
	}
	b.edges[[2]int32{int32(ia), int32(ic)}] = struct{}{}
}

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	g := &Graph{
		names:    append([]string(nil), b.names...),
		idByName: make(map[string]int, len(b.names)),
		adj:      make([][]int32, len(b.names)),
		numEdges: len(b.edges),
	}
	for name, id := range b.idByName {
		g.idByName[name] = id
	}
	for e := range b.edges {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	for _, nb := range g.adj {
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// NumProteins returns the number of vertices.
func (g *Graph) NumProteins() int { return len(g.names) }

// NumEdges returns the number of undirected interactions.
func (g *Graph) NumEdges() int { return g.numEdges }

// Name returns the protein name for id.
func (g *Graph) Name(id int) string { return g.names[id] }

// ID looks up a protein by name.
func (g *Graph) ID(name string) (int, bool) {
	id, ok := g.idByName[name]
	return id, ok
}

// Neighbors returns the sorted neighbor IDs of protein id. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(id int) []int32 { return g.adj[id] }

// Degree returns the number of known interaction partners of protein id.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// HasEdge reports whether proteins a and b are known to interact.
func (g *Graph) HasEdge(a, b int) bool {
	nb := g.adj[a]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(b) })
	return i < len(nb) && nb[i] == int32(b)
}

// Edges calls fn once per undirected edge (a < b). Iteration stops early
// if fn returns false.
func (g *Graph) Edges(fn func(a, b int) bool) {
	for a, nb := range g.adj {
		for _, b := range nb {
			if int(b) > a {
				if !fn(a, int(b)) {
					return
				}
			}
		}
	}
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Isolated int // vertices with no interactions
}

// Stats computes degree statistics for the graph.
func (g *Graph) Stats() DegreeStats {
	if len(g.adj) == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{Min: len(g.adj[0]), Max: len(g.adj[0])}
	total := 0
	for _, nb := range g.adj {
		d := len(nb)
		total += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.Mean = float64(total) / float64(len(g.adj))
	return s
}

// WriteTSV serializes the graph as a BioGRID-style two-column TSV of
// interacting protein names, preceded by '#protein' comment lines listing
// every vertex in ID order. ReadTSV registers those before any edge, so
// vertex IDs — not just the vertex set — survive the round trip. That
// matters because pipe.New requires graph vertex i to be proteome entry i;
// a graph that came back with reshuffled IDs would no longer align with
// the FASTA file written alongside it.
func (g *Graph) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range g.names {
		if _, err := fmt.Fprintf(bw, "#protein\t%s\n", name); err != nil {
			return err
		}
	}
	var err error
	g.Edges(func(a, b int) bool {
		_, err = fmt.Fprintf(bw, "%s\t%s\n", g.names[a], g.names[b])
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTSV parses the format written by WriteTSV. Unknown '#' comments are
// skipped; '#protein' comments register isolated vertices.
func ReadTSV(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if fields[0] == "#protein" && len(fields) == 2 {
				b.AddProtein(fields[1])
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("ppigraph: line %d: want 2 fields, got %d", line, len(fields))
		}
		b.AddEdge(fields[0], fields[1])
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ppigraph: reading TSV: %w", err)
	}
	return b.Build(), nil
}

// SaveTSVFile writes the graph to a TSV file on disk.
func (g *Graph) SaveTSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTSVFile reads a graph from a TSV file on disk.
func LoadTSVFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTSV(f)
}
