// Package repro is InSiPS-Go: a from-scratch Go reproduction of
// "Engineering Inhibitory Proteins with InSiPS: The In-Silico Protein
// Synthesizer" (Schoenrock et al., SC '15).
//
// InSiPS designs novel inhibitory proteins: given a target protein and a
// set of non-target proteins, a genetic algorithm evolves a sequence
// whose PIPE-predicted interaction profile is "binds the target, binds
// nothing else". This repository implements the complete system — the
// PIPE interaction predictor with its PAM120 window-similarity database,
// the genetic algorithm, the two-level master/worker parallel engine
// (goroutines in-process, TCP across processes), a synthetic stand-in
// for the yeast proteome and interaction database, a stochastic wet-lab
// simulator for the paper's validation assays, and a calibrated Blue
// Gene/Q model for its scaling studies.
//
// Start with README.md for usage, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
//	go run ./cmd/experiments -run all
package repro
