package repro

import (
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/evalbackend"
	"repro/internal/faultnet"
	"repro/internal/ga"
	"repro/internal/netcluster"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/yeastgen"
)

// TestElasticDispatchChaosBitIdentical is the elastic-dispatch acceptance
// test: a full design run over a four-worker distributed fleet under
// churn and stragglers — two workers faultnet-stalled after the first
// generation, one flapping via graceful drain and rejoin — must produce
// a trajectory bit-identical to the in-process pool, because every
// degraded path (lease expiry, quarantine, hedge, retry) re-scores
// candidates with the same deterministic engine. The journal
// conservation law must hold on every record even while hedges and
// retries overlap.
func TestElasticDispatchChaosBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}

	proteome, err := yeastgen.Generate(yeastgen.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pipe.New(proteome.Proteins, proteome.Graph, pipe.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := proteome.WetlabTargetIDs()[0]
	var nonTargets []int
	for _, id := range proteome.ComponentMembers(proteome.Component(target)) {
		if id != target && len(nonTargets) < 6 {
			nonTargets = append(nonTargets, id)
		}
	}
	problem := core.Problem{Engine: engine, TargetID: target, NonTargetIDs: nonTargets}

	// Rounds must be long enough (~100ms) that a stalled worker's
	// handler is guaranteed to pull a lease mid-round and burn it.
	params := ga.DefaultParams()
	params.PopulationSize = 64
	params.SeqLen = 200
	params.Seed = 17
	term := ga.Termination{MinGenerations: 6, StallGenerations: 6, MaxGenerations: 6}
	clusterCfg := cluster.Config{Workers: 2, ThreadsPerWorker: 1}

	run := func(backend evalbackend.Backend, onGen func(int)) ([]obs.GenerationRecord, core.Result) {
		t.Helper()
		var recs []obs.GenerationRecord
		d, err := core.NewDesigner(problem, core.Options{
			GA:          params,
			Cluster:     clusterCfg,
			Termination: term,
			Backend:     backend,
			OnJournalRecord: func(rec *obs.GenerationRecord) {
				recs = append(recs, *rec)
				if onGen != nil {
					onGen(rec.Generation)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		return recs, res
	}

	// Reference trajectory: plain in-process pool.
	refRecs, refRes := run(nil, nil)

	// Chaos fleet: a TCP master with tight leases so stalled workers are
	// quarantined fast (MaxAttempts=1 — the retry middleware, not the
	// master, is the recovery path under test).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := netcluster.NewMasterOptions(netcluster.NewSetup(engine, target, nonTargets, 1), ln, netcluster.Options{
		LeaseTimeout:      200 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatMisses:   1000, // stalled conns are reaped by lease expiry, not liveness
		MaxAttempts:       1,
	})
	defer m.Close()
	ctx := t.Context()

	// Two straggler workers behind one fault profile, stalled after the
	// first generation completes.
	prof := faultnet.NewProfile()
	for i := 0; i < 2; i++ {
		go netcluster.RunWorkerLoop(ctx, m.Addr(), netcluster.WorkerOptions{Dial: faultnet.Dialer(prof)})
	}
	// One flapper: drains gracefully after generations 1 and 2, rejoins
	// after each, then stays for the rest of the run.
	drain1 := make(chan struct{})
	drain2 := make(chan struct{})
	go func() {
		for _, drain := range []chan struct{}{drain1, drain2} {
			done := make(chan struct{})
			go func() {
				netcluster.RunWorkerLoop(ctx, m.Addr(), netcluster.WorkerOptions{Drain: drain})
				close(done)
			}()
			select {
			case <-done:
			case <-ctx.Done():
				return
			}
		}
		netcluster.RunWorkerLoop(ctx, m.Addr(), netcluster.WorkerOptions{})
	}()
	// One healthy worker for the whole run.
	go netcluster.RunWorkerLoop(ctx, m.Addr(), netcluster.WorkerOptions{})
	deadline := time.Now().Add(30 * time.Second)
	for m.Workers() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("chaos fleet did not assemble")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The elastic chain: hedge the master's stragglers on a local pool,
	// and recover anything the master abandons on another.
	hedgePool, err := evalbackend.NewPool(engine, target, nonTargets, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	retryPool, err := evalbackend.NewPool(engine, target, nonTargets, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	hedged := evalbackend.WithHedging(evalbackend.NewMaster(m), hedgePool, evalbackend.HedgingConfig{
		Fraction:   0.25,
		Percentile: 0.50,
		MinDelay:   5 * time.Millisecond,
		MaxDelay:   500 * time.Millisecond,
	}, nil)
	chain := evalbackend.WithRetry(hedged, retryPool, nil)

	// Chaos events fire deterministically off the generation journal:
	// gens 1 and 2 drain the flapper, gen 4 stalls the stragglers — late
	// enough that the hedging layer's latency history is warmed up, so
	// the 200ms quarantine stall in generation 5 must arm a hedge.
	chaosRecs, chaosRes := run(chain, func(gen int) {
		switch gen {
		case 1:
			close(drain1)
		case 2:
			close(drain2)
		case 4:
			prof.Stall()
		}
	})

	// Trajectories must be bit-identical: same generations, same
	// population hashes, same fitness series, same final design.
	if len(chaosRecs) != len(refRecs) {
		t.Fatalf("generation count diverged: chaos %d vs reference %d", len(chaosRecs), len(refRecs))
	}
	for i := range refRecs {
		ref, got := refRecs[i], chaosRecs[i]
		if got.PopHash != ref.PopHash {
			t.Fatalf("gen %d population diverged: %s vs %s", ref.Generation, got.PopHash, ref.PopHash)
		}
		if got.BestFitness != ref.BestFitness || got.MeanFitness != ref.MeanFitness {
			t.Fatalf("gen %d fitness diverged: best %v/%v mean %v/%v",
				ref.Generation, got.BestFitness, ref.BestFitness, got.MeanFitness, ref.MeanFitness)
		}
		if got.AbandonedTasks != 0 {
			t.Fatalf("gen %d leaked %d abandoned tasks through the retry layer", got.Generation, got.AbandonedTasks)
		}
		if got.Population > 0 && got.AccountedCandidates() != got.Population {
			t.Fatalf("gen %d accounting violated: evaluated %d + cache %d + abandoned %d + estimated %d != population %d (hedged wins %d)",
				got.Generation, got.Evaluated, got.CacheHits, got.AbandonedTasks,
				got.SurrogateEstimated, got.Population, got.HedgedWins)
		}
	}
	if chaosRes.Best.Residues() != refRes.Best.Residues() {
		t.Fatal("final designed sequence diverged from the in-process reference")
	}
	if chaosRes.BestDetail != refRes.BestDetail {
		t.Fatalf("final design detail diverged: %+v vs %+v", chaosRes.BestDetail, refRes.BestDetail)
	}

	// The chaos actually happened: the flapper drained twice, the
	// stalled workers burned leases into quarantine, and the hedging
	// layer armed against the induced stragglers.
	st := m.Stats()
	if st.WorkersDrained < 2 {
		t.Fatalf("flapper never drained: %+v", st)
	}
	if st.TasksQuarantined < 1 {
		t.Fatalf("stalled workers burned no leases: %+v", st)
	}
	cs := chain.Stats()
	if cs.HedgesIssued == 0 {
		t.Fatalf("hedging never armed against the stall: %+v", cs)
	}
	if cs.Recovered != cs.Retried {
		t.Fatalf("retry failed to recover abandoned tasks: %+v", cs)
	}
}
