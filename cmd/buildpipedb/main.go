// Command buildpipedb performs the paper's offline preprocessing step:
// it builds the PIPE similarity database over a proteome ("completed
// offline, beforehand, for the known natural proteins") and persists it
// with a fingerprint of the proteome and configuration, so cmd/insips
// (-db) and cmd/insipsd (-db) can skip the expensive engine build.
//
// Usage:
//
//	buildpipedb -proteome data/proteome.fasta -graph data/interactions.tsv \
//	            -out data/pipe.db
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/pipe"
	"repro/internal/ppigraph"
	"repro/internal/seq"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("buildpipedb: ")
	var (
		proteomePath = flag.String("proteome", "data/proteome.fasta", "proteome FASTA")
		graphPath    = flag.String("graph", "data/interactions.tsv", "interaction TSV")
		outPath      = flag.String("out", "data/pipe.db", "output database file")
		threads      = flag.Int("threads", 0, "build threads (0 = all cores)")
	)
	flag.Parse()

	proteins, err := seq.LoadFASTAFile(*proteomePath)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := ppigraph.LoadTSVFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("building similarity database over %d proteins, %d interactions...",
		len(proteins), graph.NumEdges())
	begin := time.Now()
	engine, err := pipe.New(proteins, graph, pipe.Config{}, *threads)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.SaveDBFile(*outPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (fingerprint %x) in %v\n",
		*outPath, engine.Fingerprint(), time.Since(begin).Round(time.Millisecond))
}
