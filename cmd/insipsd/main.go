// Command insipsd is the long-running InSiPS design & scoring service:
// it loads a proteome and interaction network once, caches PIPE engines
// by fingerprint, and serves synchronous batched scoring plus an
// asynchronous design-job queue over HTTP/JSON (package server).
//
// Usage:
//
//	insipsd -addr :8080 -proteome data/proteome.fasta \
//	        -graph data/interactions.tsv [-db data/pipe.db]
//
// Then:
//
//	curl localhost:8080/healthz
//	curl -d '{"query_name":"YAL054C","against":["YAL055W"]}' localhost:8080/v1/score
//	curl -d '{"target":"YAL054C","max_generations":50}' localhost:8080/v1/designs
//	curl localhost:8080/v1/designs/d-000001
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM triggers a graceful drain: intake stops, queued and
// running design jobs finish (up to -drain-timeout, then they are
// cancelled — jobs stop within one generation), and the process exits.
//
// Scale-out: -store-dir points every replica at a shared persistent job
// store (requires -journal-dir on the same shared storage). Replicas
// claim jobs under a -job-lease; a killed replica's jobs are recovered
// by peers and resumed from their checkpoints, and a drained replica
// hands its running jobs back for immediate pickup. -tenants enables
// API keys, per-tenant rate limits and weighted fair-share admission.
// See docs/OPERATIONS.md and docs/CAPACITY.md.
//
// Observability: -log-level enables structured slog tracing (add
// -log-json for JSON lines); -journal-dir gives every design job a run
// journal with periodic checkpoints under <dir>/<job-id>/; per-stage
// timing histograms appear on /metrics as insipsd_stage_seconds;
// GET /v1/designs/{id}/progress tails a job's journal stream; and
// -pprof-addr serves net/http/pprof on a separate listener (off by
// default). See docs/OPERATIONS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/ppigraph"
	"repro/internal/seq"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insipsd: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		proteomePath = flag.String("proteome", "data/proteome.fasta", "proteome FASTA")
		graphPath    = flag.String("graph", "data/interactions.tsv", "interaction TSV")
		dbPath       = flag.String("db", "", "precomputed PIPE similarity database (see cmd/buildpipedb)")
		buildThreads = flag.Int("build-threads", 0, "engine build threads (0 = all cores)")
		queueWorkers = flag.Int("queue-workers", 2, "concurrent design jobs")
		queueCap     = flag.Int("queue-cap", 16, "max queued design jobs before 429")
		scoreThreads = flag.Int("score-threads", 0, "per-request thread cap for /v1/score (0 = all cores)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown")
		journalDir   = flag.String("journal-dir", "", "give every design job a run journal + checkpoints under this directory")
		ckptEvery    = flag.Int("checkpoint-every", 25, "generations between job checkpoints (-journal-dir mode; negative disables)")
		logLevel     = flag.String("log-level", "", "structured log level: debug, info, warn or error (empty = off)")
		logJSON      = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of key=value text")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		storeDir     = flag.String("store-dir", "", "persistent job store directory shared by all replicas (empty = in-memory single-node mode)")
		replicaID    = flag.String("replica-id", "", "replica name in job leases and logs (default insipsd-<pid>)")
		jobLease     = flag.Duration("job-lease", 15*time.Second, "job ownership lease; a dead replica's jobs are recovered after this (-store-dir mode)")
		pollInterval = flag.Duration("poll-interval", 250*time.Millisecond, "idle job-claim retry cadence (-store-dir mode)")
		tenantsPath  = flag.String("tenants", "", "JSON tenant file enabling API keys, rate limits and fair-share admission (empty = open access)")
	)
	flag.Parse()

	var logger *obs.Logger
	if *logLevel != "" {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			log.Fatal(err)
		}
		if *logJSON {
			logger = obs.NewJSONLogger(os.Stderr, lv)
		} else {
			logger = obs.NewTextLogger(os.Stderr, lv)
		}
	}

	proteins, err := seq.LoadFASTAFile(*proteomePath)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := ppigraph.LoadTSVFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := server.Config{
		Proteins:        proteins,
		Graph:           graph,
		DBPath:          *dbPath,
		BuildThreads:    *buildThreads,
		QueueWorkers:    *queueWorkers,
		QueueCapacity:   *queueCap,
		MaxScoreThreads: *scoreThreads,
		Logger:          logger,
		JournalDir:      *journalDir,
		CheckpointEvery: *ckptEvery,
		ReplicaID:       *replicaID,
		JobLease:        *jobLease,
		PollInterval:    *pollInterval,
	}
	if *storeDir != "" {
		if *journalDir == "" {
			log.Fatal("-store-dir requires -journal-dir (checkpoints must be on storage shared by all replicas)")
		}
		store, err := jobstore.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = store
	}
	if *tenantsPath != "" {
		tenants, err := server.LoadTenantsFile(*tenantsPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tenants = tenants
	}
	if *dbPath != "" {
		// Check staleness up front with a clear remedy, rather than
		// silently rebuilding what the operator explicitly pointed us at.
		dbFP, err := pipe.DBFingerprint(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		if want := pipe.Fingerprint(proteins, cfg.Pipe); dbFP != want {
			log.Fatalf("stale database %s: fingerprint %x does not match this proteome/config (%x); rebuild with cmd/buildpipedb",
				*dbPath, dbFP, want)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d proteins, %d interactions; preloading engine...",
		len(proteins), graph.NumEdges())
	fromDB, elapsed, err := srv.Preload()
	if err != nil {
		log.Fatal(err)
	}
	source := "built from scratch"
	if fromDB {
		source = "loaded from " + *dbPath
	}
	log.Printf("engine ready in %v (%s)", elapsed.Round(time.Millisecond), source)

	if *pprofAddr != "" {
		// A dedicated mux on a separate listener: the profiling surface is
		// opt-in and never exposed on the service address.
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof serving on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	httpServer := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("signal received, draining (timeout %v)...", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		_ = httpServer.Shutdown(shutdownCtx)
		if err := srv.Drain(shutdownCtx); err != nil {
			log.Printf("drain: cancelled remaining jobs: %v", err)
		}
	}()
	mode := "in-memory jobs"
	if *storeDir != "" {
		mode = "persistent store " + *storeDir
	}
	log.Printf("serving on %s (workers %d, queue %d, %s)", *addr, *queueWorkers, *queueCap, mode)
	if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returned because Shutdown ran; wait for the drain
	// goroutine's job cleanup by re-draining (idempotent, already done
	// when the goroutine finished first).
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = srv.Drain(drainCtx)
	log.Print("drained, bye")
}
