// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §4 for the index).
//
// Usage:
//
//	experiments -run all            # every exhibit, full scale
//	experiments -run fig7 -quick    # one exhibit at smoke-test scale
//	experiments -run table4 -data out/
//
// With -from-journal the binary instead replays a run journal written by
// insips -journal or insipsd -journal-dir into Figure 7-style learning
// curves, without touching the proteome or engine:
//
//	experiments -from-journal runs/anti-YAL054C        # run directory
//	experiments -from-journal runs/x/journal.jsonl -data out/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run         = flag.String("run", "all", "exhibit to run: all, or one of "+strings.Join(experiments.Names(), ","))
		quick       = flag.Bool("quick", false, "smoke-test scale (small proteome, short GA runs)")
		dataDir     = flag.String("data", "", "write .dat/.txt files for each exhibit into this directory")
		fromJournal = flag.String("from-journal", "", "replay a run journal (directory or journal.jsonl) into learning curves instead of running exhibits")
	)
	flag.Parse()

	if *fromJournal != "" {
		if err := experiments.ReplayJournal(*fromJournal, os.Stdout, *dataDir); err != nil {
			log.Fatal(err)
		}
		return
	}

	env := experiments.NewEnv(*quick, os.Stdout, *dataDir)
	start := time.Now()
	var err error
	if *run == "all" {
		err = env.RunAll()
	} else {
		for _, name := range strings.Split(*run, ",") {
			if err = env.Run(strings.TrimSpace(name)); err != nil {
				break
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Second))
}
