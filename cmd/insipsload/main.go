// Command insipsload is the capacity-measurement load generator behind
// docs/CAPACITY.md: it submits a batch of identical small design jobs
// to one or more insipsd replicas, waits for every job to finish, and
// reports sustained throughput as jobs/sec and jobs/sec/replica plus
// submit-latency percentiles.
//
// Usage:
//
//	insipsload -addrs localhost:8081,localhost:8082 -jobs 40 \
//	           -population 40 -generations 12 [-key <api-key>]
//
// Submissions round-robin across -addrs. Against a shared -store-dir
// deployment any replica can report any job's state, so completion is
// polled on the first address only. The job shape knobs (-population,
// -seq-len, -generations, -workers, -threads) set the unit of work;
// keep them fixed when comparing replica counts.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type designRequest struct {
	Target         string `json:"target"`
	MaxNonTargets  int    `json:"max_non_targets,omitempty"`
	Population     int    `json:"population,omitempty"`
	SeqLen         int    `json:"seq_len,omitempty"`
	Seed           int64  `json:"seed,omitempty"`
	MinGenerations int    `json:"min_generations,omitempty"`
	MaxGenerations int    `json:"max_generations,omitempty"`
	Workers        int    `json:"workers,omitempty"`
	Threads        int    `json:"threads,omitempty"`
}

type jobJSON struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("insipsload: ")
	var (
		addrs       = flag.String("addrs", "localhost:8080", "comma-separated replica addresses (round-robin submission)")
		key         = flag.String("key", "", "tenant API key (X-API-Key; empty for open deployments)")
		jobs        = flag.Int("jobs", 20, "design jobs to submit")
		concurrency = flag.Int("concurrency", 4, "concurrent submitters")
		target      = flag.String("target", "", "target protein name (empty = first proteome protein reported by a probe job error, required)")
		nonTargets  = flag.Int("non-targets", 5, "max_non_targets per job")
		population  = flag.Int("population", 40, "GA population per job")
		seqLen      = flag.Int("seq-len", 60, "designed sequence length")
		generations = flag.Int("generations", 10, "min=max generations per job (fixed work unit)")
		workers     = flag.Int("workers", 1, "evaluator workers per job")
		threads     = flag.Int("threads", 1, "threads per evaluator worker")
		timeout     = flag.Duration("timeout", 10*time.Minute, "overall deadline")
		pollEvery   = flag.Duration("poll", 500*time.Millisecond, "completion poll cadence")
	)
	flag.Parse()
	if *target == "" {
		log.Fatal("need -target (a proteome protein name, e.g. P000 for the synthetic fixtures)")
	}
	replicas := strings.Split(*addrs, ",")
	for i := range replicas {
		replicas[i] = strings.TrimSpace(replicas[i])
	}

	client := &http.Client{Timeout: 30 * time.Second}
	do := func(method, addr, path string, body any) (*http.Response, error) {
		var rd io.Reader
		if body != nil {
			raw, err := json.Marshal(body)
			if err != nil {
				return nil, err
			}
			rd = bytes.NewReader(raw)
		}
		req, err := http.NewRequest(method, "http://"+addr+path, rd)
		if err != nil {
			return nil, err
		}
		if *key != "" {
			req.Header.Set("X-API-Key", *key)
		}
		return client.Do(req)
	}

	// Fixed-shape jobs: min_generations = max_generations pins the work
	// unit, so throughput comparisons across replica counts are fair.
	newReq := func(i int) designRequest {
		return designRequest{
			Target:         *target,
			MaxNonTargets:  *nonTargets,
			Population:     *population,
			SeqLen:         *seqLen,
			Seed:           int64(i + 1),
			MinGenerations: *generations,
			MaxGenerations: *generations,
			Workers:        *workers,
			Threads:        *threads,
		}
	}

	var (
		mu        sync.Mutex
		ids       []string
		latencies []time.Duration
		failures  int
	)
	begin := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				addr := replicas[i%len(replicas)]
				t0 := time.Now()
				resp, err := do("POST", addr, "/v1/designs", newReq(i))
				lat := time.Since(t0)
				if err != nil {
					log.Printf("submit %d to %s: %v", i, addr, err)
					mu.Lock()
					failures++
					mu.Unlock()
					continue
				}
				var j jobJSON
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted || json.Unmarshal(data, &j) != nil || j.ID == "" {
					// 429 backpressure: retry the same index after a beat.
					if resp.StatusCode == http.StatusTooManyRequests {
						time.Sleep(250 * time.Millisecond)
						go func(i int) { next <- i }(i)
						continue
					}
					log.Printf("submit %d to %s: status %d: %s", i, addr, resp.StatusCode, bytes.TrimSpace(data))
					mu.Lock()
					failures++
					mu.Unlock()
					continue
				}
				mu.Lock()
				ids = append(ids, j.ID)
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	go func() {
		for i := 0; i < *jobs; i++ {
			next <- i
		}
		// Leave next open for 429 retries; submission completion is
		// detected by counting ids + failures.
	}()
	for {
		mu.Lock()
		done := len(ids)+failures >= *jobs
		mu.Unlock()
		if done {
			break
		}
		if time.Since(begin) > *timeout {
			log.Fatal("timed out during submission")
		}
		time.Sleep(50 * time.Millisecond)
	}
	submitted := time.Since(begin)
	if len(ids) == 0 {
		log.Fatal("no job was accepted")
	}

	// Poll the first replica until every submitted job is terminal (with
	// a shared store it sees them all; single-node deployments have only
	// one address anyway).
	terminal := map[string]bool{"done": true, "failed": true, "cancelled": true}
	var failedJobs int
	for {
		if time.Since(begin) > *timeout {
			log.Fatal("timed out waiting for jobs to finish")
		}
		resp, err := do("GET", replicas[0], "/v1/designs", nil)
		if err != nil {
			log.Printf("poll: %v", err)
			time.Sleep(*pollEvery)
			continue
		}
		var all []jobJSON
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &all); err != nil {
			log.Fatalf("poll: %v: %s", err, bytes.TrimSpace(data))
		}
		states := make(map[string]string, len(all))
		for _, j := range all {
			states[j.ID] = j.State
		}
		doneCount, failed := 0, 0
		for _, id := range ids {
			if terminal[states[id]] {
				doneCount++
				if states[id] != "done" {
					failed++
				}
			}
		}
		if doneCount == len(ids) {
			failedJobs = failed
			break
		}
		time.Sleep(*pollEvery)
	}
	elapsed := time.Since(begin)

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(math.Ceil(p/100*float64(len(latencies)))) - 1
		if i < 0 {
			i = 0
		}
		return latencies[i]
	}
	perSec := float64(len(ids)) / elapsed.Seconds()
	fmt.Printf("replicas            %d (%s)\n", len(replicas), strings.Join(replicas, ", "))
	fmt.Printf("jobs completed      %d (%d submit failures, %d failed jobs)\n", len(ids), failures, failedJobs)
	fmt.Printf("job shape           pop=%d seqlen=%d gens=%d nontargets=%d workers=%dx%d\n",
		*population, *seqLen, *generations, *nonTargets, *workers, *threads)
	fmt.Printf("submission window   %v\n", submitted.Round(time.Millisecond))
	fmt.Printf("total elapsed       %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("submit latency      p50=%v p95=%v max=%v\n",
		pct(50).Round(time.Millisecond), pct(95).Round(time.Millisecond), pct(100).Round(time.Millisecond))
	fmt.Printf("throughput          %.3f jobs/sec\n", perSec)
	fmt.Printf("per replica         %.3f jobs/sec/replica\n", perSec/float64(len(replicas)))
	if failures > 0 || failedJobs > 0 {
		os.Exit(1)
	}
}
