// Command genproteome generates a synthetic yeast-like proteome and
// interaction network (the stand-in for S. cerevisiae + BioGRID; see
// DESIGN.md) and writes them as FASTA and TSV files.
//
// Usage:
//
//	genproteome -out data/ [-proteins 500] [-seed 1] [-wetlab 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/seq"
	"repro/internal/yeastgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genproteome: ")
	var (
		out      = flag.String("out", "data", "output directory")
		proteins = flag.Int("proteins", 500, "number of regular proteins")
		motifs   = flag.Int("motifs", 80, "motif vocabulary size (even)")
		seed     = flag.Int64("seed", 1, "generator seed")
		wetlab   = flag.Int("wetlab", 3, "number of planted wet-lab targets")
	)
	flag.Parse()

	p := yeastgen.DefaultParams()
	p.NumProteins = *proteins
	p.NumMotifs = *motifs
	p.Seed = *seed
	p.WetlabTargets = *wetlab
	pr, err := yeastgen.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	fasta := filepath.Join(*out, "proteome.fasta")
	if err := seq.SaveFASTAFile(fasta, pr.Proteins); err != nil {
		log.Fatal(err)
	}
	tsv := filepath.Join(*out, "interactions.tsv")
	if err := pr.Graph.SaveTSVFile(tsv); err != nil {
		log.Fatal(err)
	}
	st := pr.Graph.Stats()
	fmt.Printf("wrote %s (%d proteins) and %s (%d interactions)\n",
		fasta, len(pr.Proteins), tsv, pr.Graph.NumEdges())
	fmt.Printf("degree: min %d, mean %.2f, max %d, isolated %d\n",
		st.Min, st.Mean, st.Max, st.Isolated)
	for k, id := range pr.WetlabTargetIDs() {
		fmt.Printf("wet-lab target %d: %s (%d aa, %s)\n",
			k, pr.Proteins[id].Name(), pr.Proteins[id].Len(), pr.Component(id))
	}
}
