// Command insips designs an inhibitory protein: given a proteome, a
// known-interaction network and a target protein, it evolves a novel
// sequence predicted to bind the target and nothing else (the paper's
// core workflow). Non-targets default to every other protein in the
// proteome, the paper's "all other proteins" recipe, clipped by
// -max-non-targets.
//
// Usage:
//
//	insips -proteome data/proteome.fasta -graph data/interactions.tsv \
//	       -target YBL051C -pop 200 -min-gens 250 -stall 50 \
//	       -out anti-YBL051C.fasta
//
// Distributed operation (the paper's master/worker deployment, with
// fault tolerance): start any number of workers, which need no data
// files — the master broadcasts the database —
//
//	insips -worker HOST:PORT
//
// then run the design with a listening master:
//
//	insips -target YBL051C -listen :7631 -min-workers 4 [-lease 30s] \
//	       [-max-attempts 3] [-heartbeat 5s]
//
// Candidate evaluation fans out over the TCP cluster under task leases:
// tasks held by crashed or hung workers are re-issued automatically, and
// workers reconnect with backoff if the master restarts (see
// internal/netcluster).
//
// Long campaigns should run journaled: -journal DIR appends one JSONL
// record per generation and checkpoints the population every
// -checkpoint-every generations (and on SIGINT/SIGTERM). An interrupted
// run continues bit-identically with the same flags plus -resume.
// Structured tracing goes to stderr with -log-level debug|info|warn|error
// (-log-json for machine-readable lines); see docs/OPERATIONS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/evalbackend"
	"repro/internal/ga"
	"repro/internal/island"
	"repro/internal/netcluster"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/ppigraph"
	"repro/internal/search"
	"repro/internal/seq"
)

// ensureParentDir creates the directory a file is about to be written
// into, so -out (and journal) paths in fresh directories work instead of
// failing with "no such file or directory".
func ensureParentDir(path string) error {
	dir := filepath.Dir(path)
	if dir == "" || dir == "." {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

// saveFASTA writes the designed sequence, creating parent directories.
func saveFASTA(path string, s seq.Sequence) error {
	if err := ensureParentDir(path); err != nil {
		return err
	}
	return seq.SaveFASTAFile(path, []seq.Sequence{s})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("insips: ")
	var (
		proteomePath = flag.String("proteome", "data/proteome.fasta", "proteome FASTA")
		graphPath    = flag.String("graph", "data/interactions.tsv", "interaction TSV")
		targetName   = flag.String("target", "", "target protein name")
		nonTargets   = flag.String("non-targets", "", "comma-separated non-target names (default: all other proteins)")
		maxNT        = flag.Int("max-non-targets", 25, "cap on the non-target set size")
		dbPath       = flag.String("db", "", "precomputed PIPE similarity database (see cmd/buildpipedb)")
		winCache     = flag.Int("window-cache", pipe.DefaultWindowCacheEntries, "window-similarity cache bound in entries, ~100 bytes each (0 disables the cache)")
		outPath      = flag.String("out", "", "write the designed protein to this FASTA file")

		pop      = flag.Int("pop", 200, "population size (paper: 1000)")
		seqLen   = flag.Int("len", 150, "designed sequence length")
		pCross   = flag.Float64("p-crossover", 0.5, "crossover probability")
		pMutate  = flag.Float64("p-mutate", 0.4, "mutation probability")
		pCopy    = flag.Float64("p-copy", 0.1, "copy probability")
		pAA      = flag.Float64("p-mutate-aa", 0.05, "per-residue mutation probability")
		seed     = flag.Int64("seed", 1, "random seed")
		minGens  = flag.Int("min-gens", 100, "minimum generations (paper: 250)")
		stall    = flag.Int("stall", 50, "stop after this many generations without a new best")
		maxGens  = flag.Int("max-gens", 400, "hard generation cap")
		warm     = flag.Bool("warm-start", true, "seed the population with natural-fragment chimeras")
		workers  = flag.Int("workers", 2, "worker processes")
		threads  = flag.Int("threads", 2, "threads per worker")
		shards   = flag.Int("shards", 1, "shard evaluation over this many work-stealing in-process pools (1 = one pool)")
		islands  = flag.Int("islands", 0, "run the multi-rack island model with this many masters (0 = single master)")
		syncIv   = flag.Int("sync-interval", 1, "island mode: generations between master syncs")
		progress = flag.Int("progress", 25, "print progress every N generations (0 = quiet)")

		surrogate   = flag.Bool("surrogate", false, "triage each generation through the online surrogate pre-scorer; only the predicted top candidates get full PIPE evaluations")
		surrTopK    = flag.Float64("surrogate-topk", 0.10, "fraction of each generation forwarded to real evaluation by predicted fitness (-surrogate mode)")
		surrExplore = flag.Float64("surrogate-explore", 0.05, "additional fraction evaluated at random as an exploration quota (-surrogate mode)")

		strategy   = flag.String("strategy", "ga", "search strategy: ga, beam, anneal or landscape (docs/DESIGN.md §2.3f)")
		beamWidth  = flag.Int("beam-width", 8, "beam width: survivors kept per generation (-strategy beam)")
		beamExpand = flag.Int("beam-expand", 6, "children per beam node, including its survival copy (-strategy beam)")
		beamElite  = flag.Int("beam-elite-extra", 6, "extra mutant children for the top-ranked node; 0 disables elite re-expansion (-strategy beam)")
		beamDepth  = flag.Int("beam-depth", 0, "tree depth: overrides -max-gens with an exact generation cap (-strategy beam; 0 = use -max-gens)")
		annealT0   = flag.Float64("anneal-t0", 0.02, "initial temperature of the geometric schedule (-strategy anneal)")
		annealCool = flag.Float64("anneal-cooling", 0.995, "geometric cooling factor per generation, in (0,1) (-strategy anneal)")
		annealTMin = flag.Float64("anneal-tmin", 1e-4, "temperature floor of the schedule (-strategy anneal)")
		landEps    = flag.Float64("landscape-eps", 0.01, "neutral-walk acceptance band |Δfitness| <= eps (-strategy landscape)")
		landPat    = flag.Int("landscape-patience", 20, "census cadence for neutral walkers and stall threshold for hill climbers (-strategy landscape)")

		journalDir = flag.String("journal", "", "run-journal directory: append per-generation JSONL records and periodic checkpoints here")
		resume     = flag.Bool("resume", false, "resume from the checkpoint in the -journal directory instead of starting fresh")
		ckptEvery  = flag.Int("checkpoint-every", 25, "generations between full population checkpoints (-journal mode; negative disables)")
		logLevel   = flag.String("log-level", "", "structured log level: debug, info, warn or error (empty = off)")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of key=value text")

		workerAddr  = flag.String("worker", "", "run as an evaluation worker serving the master at this address (no data files needed)")
		listenAddr  = flag.String("listen", "", "evaluate candidates over TCP workers; listen for them on this address")
		minWorkers  = flag.Int("min-workers", 1, "wait for this many workers before designing (-listen mode)")
		lease       = flag.Duration("lease", 30*time.Second, "task lease before the master re-issues it (-listen mode)")
		maxAttempts = flag.Int("max-attempts", 3, "dispatch attempts before a task is abandoned (-listen mode)")
		heartbeat   = flag.Duration("heartbeat", 0, "liveness ping interval, broadcast to workers (0 = derived from -lease)")
		backoffMin  = flag.Duration("backoff-min", 100*time.Millisecond, "worker reconnect backoff floor (-worker mode)")
		backoffMax  = flag.Duration("backoff-max", 10*time.Second, "worker reconnect backoff ceiling (-worker mode)")
		fallback    = flag.Bool("fallback-local", false, "re-evaluate abandoned tasks on a local pool (-listen mode, or -shards > 1)")
		minLive     = flag.Int("min-live-workers", 0, "hold dispatch while fewer workers are connected (-listen mode; 0 = no gate)")
		hedge       = flag.Bool("hedge", false, "duplicate the tail of each straggling round onto a local pool; first result wins (-listen mode)")
		hedgeFrac   = flag.Float64("hedge-fraction", 0.10, "fraction of each round eligible for hedged duplicates (-hedge mode)")
		hedgePct    = flag.Float64("hedge-percentile", 0.90, "observed round-latency percentile that arms the hedge (-hedge mode)")
	)
	flag.Parse()

	var logger *obs.Logger
	if *logLevel != "" {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			log.Fatal(err)
		}
		if *logJSON {
			logger = obs.NewJSONLogger(os.Stderr, lv)
		} else {
			logger = obs.NewTextLogger(os.Stderr, lv)
		}
	}

	if *workerAddr != "" {
		if *listenAddr != "" {
			log.Fatal("-worker and -listen are mutually exclusive")
		}
		// Workers are data-free: the master broadcasts the proteome and
		// interaction network, and the engine is rebuilt (or reused, on
		// reconnect) from that. The loop survives master restarts. The
		// first SIGINT/SIGTERM drains gracefully — the current task is
		// finished and delivered, no attempt is burned — and a second
		// hard-stops.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		drain := make(chan struct{})
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			log.Printf("worker: draining — finishing the current task (interrupt again to stop now)")
			close(drain)
			<-sig
			cancel()
		}()
		log.Printf("worker: serving master at %s (interrupt to drain)", *workerAddr)
		n, _ := netcluster.RunWorkerLoop(ctx, *workerAddr, netcluster.WorkerOptions{
			ReconnectMin: *backoffMin,
			ReconnectMax: *backoffMax,
			Drain:        drain,
			Logf:         log.Printf,
			Logger:       logger,
		})
		log.Printf("worker: processed %d candidates", n)
		return
	}
	if *targetName == "" {
		log.Fatal("need -target NAME")
	}
	// Flag sanity checks fail fast, before the proteome is loaded.
	if *shards < 1 {
		log.Fatalf("-shards must be at least 1 (got %d); use 1 for a single pool or N > 1 for work-stealing shards", *shards)
	}
	if *shards > 1 && *listenAddr != "" {
		log.Fatal("-shards shards over in-process pools and cannot be combined with -listen (TCP workers)")
	}
	if *shards > 1 && *islands > 1 {
		log.Fatal("-shards cannot be combined with -islands (each island already owns its own pool)")
	}
	if *fallback && *listenAddr == "" && *shards <= 1 {
		log.Fatal("-fallback-local requires -listen or -shards > 1: it recovers tasks those backends abandon, and a single local pool has nothing to fall back from")
	}
	if *minLive > 0 && *listenAddr == "" {
		log.Fatal("-min-live-workers requires -listen (it gates dispatch while the TCP fleet is depopulated)")
	}
	if *hedge {
		if *listenAddr == "" {
			log.Fatal("-hedge requires -listen (it duplicates the cluster's straggling tail onto a local pool)")
		}
		if *hedgeFrac <= 0 || *hedgeFrac > 1 || *hedgePct <= 0 || *hedgePct >= 1 {
			log.Fatal("-hedge-fraction must be in (0,1] and -hedge-percentile in (0,1)")
		}
	} else if *hedgeFrac != 0.10 || *hedgePct != 0.90 {
		log.Fatal("-hedge-fraction/-hedge-percentile require -hedge")
	}
	// Strategy flags fail fast the same way: tuning knobs for a strategy
	// that is not selected are almost certainly operator error.
	searchCfg := search.Config{Strategy: *strategy}
	switch *strategy {
	case search.StrategyGA, search.StrategyBeam, search.StrategyAnneal, search.StrategyLandscape:
	default:
		log.Fatalf("-strategy must be one of %v (got %q)", search.Strategies(), *strategy)
	}
	if *strategy != search.StrategyBeam && (*beamWidth != 8 || *beamExpand != 6 || *beamElite != 6 || *beamDepth != 0) {
		log.Fatal("-beam-width/-beam-expand/-beam-elite-extra/-beam-depth require -strategy beam")
	}
	if *strategy != search.StrategyAnneal && (*annealT0 != 0.02 || *annealCool != 0.995 || *annealTMin != 1e-4) {
		log.Fatal("-anneal-t0/-anneal-cooling/-anneal-tmin require -strategy anneal")
	}
	if *strategy != search.StrategyLandscape && (*landEps != 0.01 || *landPat != 20) {
		log.Fatal("-landscape-eps/-landscape-patience require -strategy landscape")
	}
	if *islands > 1 && *strategy != search.StrategyGA {
		log.Fatalf("-islands drives the genetic algorithm directly and cannot be combined with -strategy %s", *strategy)
	}
	switch *strategy {
	case search.StrategyBeam:
		elite := *beamElite
		if elite == 0 {
			elite = -1 // flag 0 means "no re-expansion", config 0 means "default"
		}
		searchCfg.Beam = search.BeamConfig{Width: *beamWidth, Expand: *beamExpand, EliteExtra: elite, Depth: *beamDepth}
	case search.StrategyAnneal:
		searchCfg.Anneal = search.AnnealConfig{T0: *annealT0, Cooling: *annealCool, TMin: *annealTMin}
	case search.StrategyLandscape:
		searchCfg.Landscape = search.LandscapeConfig{Eps: *landEps, Patience: *landPat}
	}

	if *winCache < 0 {
		log.Fatalf("-window-cache must be >= 0 (got %d); use 0 to disable the cache", *winCache)
	}
	// pipe.Config reserves 0 for "default" and negative for "disabled";
	// the flag exposes the friendlier 0-disables convention.
	pipeCfg := pipe.Config{WindowCacheEntries: *winCache}
	if *winCache == 0 {
		pipeCfg.WindowCacheEntries = -1
	}

	proteins, err := seq.LoadFASTAFile(*proteomePath)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := ppigraph.LoadTSVFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	var engine *pipe.Engine
	if *dbPath != "" {
		log.Printf("loading PIPE similarity database %s...", *dbPath)
		engine, err = pipe.NewFromDBFile(proteins, graph, pipeCfg, *dbPath)
		if errors.Is(err, pipe.ErrStaleDB) {
			log.Fatalf("stale database %s: it was built for a different proteome or configuration; rebuild with cmd/buildpipedb (%v)",
				*dbPath, err)
		}
	} else {
		log.Printf("building PIPE engine over %d proteins, %d interactions...",
			len(proteins), graph.NumEdges())
		engine, err = pipe.New(proteins, graph, pipeCfg, 0)
	}
	if err != nil {
		log.Fatal(err)
	}
	targetID, ok := graph.ID(*targetName)
	if !ok {
		log.Fatalf("target %q not in the proteome", *targetName)
	}
	var ntIDs []int
	if *nonTargets != "" {
		for _, name := range strings.Split(*nonTargets, ",") {
			id, ok := graph.ID(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("non-target %q not in the proteome", name)
			}
			ntIDs = append(ntIDs, id)
		}
	} else {
		for id := 0; id < graph.NumProteins() && len(ntIDs) < *maxNT; id++ {
			if id != targetID {
				ntIDs = append(ntIDs, id)
			}
		}
	}

	metrics := obs.NewRegistry()
	opts := core.Options{
		GA: ga.Params{
			PopulationSize:  *pop,
			PCopy:           *pCopy,
			PMutate:         *pMutate,
			PCrossover:      *pCross,
			PMutateAA:       *pAA,
			SeqLen:          *seqLen,
			CrossoverMargin: 10,
			Seed:            *seed,
		},
		Search:      searchCfg,
		WarmStart:   *warm,
		Cluster:     cluster.Config{Workers: *workers, ThreadsPerWorker: *threads, Metrics: metrics},
		Termination: ga.Termination{MinGenerations: *minGens, StallGenerations: *stall, MaxGenerations: *maxGens},
		Logger:      logger,
		Metrics:     metrics,
	}
	if *beamDepth > 0 {
		// Beam depth is the tree's exact generation budget.
		opts.Termination = ga.Termination{MaxGenerations: *beamDepth}
	}
	if *resume && *journalDir == "" {
		log.Fatal("-resume requires -journal DIR (the directory holding the checkpoint)")
	}
	if *resume && *islands > 1 {
		log.Fatal("-resume cannot be combined with -islands (the island model has no checkpoint path)")
	}
	var journal *obs.RunJournal
	if *journalDir != "" && *islands <= 1 {
		var err error
		journal, err = obs.OpenJournal(*journalDir, obs.JournalOptions{CheckpointEvery: *ckptEvery, Logger: logger})
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		opts.Journal = journal
	}
	if *strategy == search.StrategyLandscape && *journalDir != "" {
		// The landscape census rides alongside the journal: one JSONL
		// record per local optimum / neutral-walk report, appended so a
		// resumed run extends it.
		census, err := search.NewCensusWriter(search.CensusPath(*journalDir))
		if err != nil {
			log.Fatal(err)
		}
		defer census.Close()
		opts.Search.Landscape.OnCensus = census.Append
	}
	if *progress > 0 {
		opts.OnGeneration = func(cp core.CurvePoint) {
			if cp.Generation%*progress == 0 {
				log.Printf("gen %4d: fitness %.4f  target %.4f  maxNT %.4f",
					cp.Generation, cp.Fitness, cp.Target, cp.MaxNonTarget)
			}
		}
	}
	if *surrogate {
		if *islands > 1 {
			log.Fatal("-surrogate cannot be combined with -islands (each island evaluates independently; the shared model would break island determinism)")
		}
		if *surrTopK <= 0 || *surrTopK > 1 || *surrExplore < 0 || *surrExplore > 1 {
			log.Fatal("-surrogate-topk must be in (0,1] and -surrogate-explore in [0,1]")
		}
		opts.Surrogate = &evalbackend.SurrogateConfig{TopK: *surrTopK, Explore: *surrExplore}
	} else if *surrTopK != 0.10 || *surrExplore != 0.05 {
		log.Fatal("-surrogate-topk/-surrogate-explore require -surrogate")
	}
	localPool := func() evalbackend.Backend {
		pb, err := evalbackend.NewPool(engine, targetID, ntIDs,
			cluster.Config{Workers: *workers, ThreadsPerWorker: *threads, Metrics: metrics})
		if err != nil {
			log.Fatal(err)
		}
		return pb
	}
	var sharded *evalbackend.Sharded
	if *shards > 1 {
		shardBackends := make([]evalbackend.Backend, *shards)
		for i := range shardBackends {
			shardBackends[i] = localPool()
		}
		sh, err := evalbackend.NewSharded(shardBackends...)
		if err != nil {
			log.Fatal(err)
		}
		sharded = sh
		backend := evalbackend.Backend(sh)
		if *fallback {
			// A failed shard's tasks come back abandoned; re-score them
			// on a fresh pool instead of scoring zero fitness.
			backend = evalbackend.WithRetry(backend, localPool(), logger)
		}
		opts.Backend = backend
	}
	var master *netcluster.Master
	if *listenAddr != "" {
		if *islands > 1 {
			log.Fatal("-listen (TCP workers) cannot be combined with -islands; islands evaluate on in-process pools")
		}
		ln, err := net.Listen("tcp", *listenAddr)
		if err != nil {
			log.Fatal(err)
		}
		master = netcluster.NewMasterOptions(
			netcluster.NewSetup(engine, targetID, ntIDs, *threads), ln,
			netcluster.Options{
				LeaseTimeout:      *lease,
				MaxAttempts:       *maxAttempts,
				HeartbeatInterval: *heartbeat,
				MinLiveWorkers:    *minLive,
				Logger:            logger,
				Metrics:           metrics,
			})
		defer master.Close()
		log.Printf("master: listening on %s; waiting for %d worker(s) — start them with: insips -worker %s",
			master.Addr(), *minWorkers, master.Addr())
		for master.Workers() < *minWorkers {
			time.Sleep(50 * time.Millisecond)
		}
		log.Printf("master: %d worker(s) connected (lease %s, max %d attempts)",
			master.Workers(), *lease, *maxAttempts)
		backend := evalbackend.Backend(evalbackend.NewMaster(master))
		if *hedge {
			// Straggling rounds duplicate their tail onto a local pool;
			// whichever copy lands first wins, stale copies are dropped.
			backend = evalbackend.WithHedging(backend, localPool(), evalbackend.HedgingConfig{
				Fraction:   *hedgeFrac,
				Percentile: *hedgePct,
			}, logger)
		}
		if *fallback {
			// Abandoned tasks (all attempts exhausted) re-evaluate on a
			// local pool instead of scoring zero fitness.
			backend = evalbackend.WithRetry(backend, localPool(), logger)
		}
		opts.Backend = backend
		// Stamp per-generation worker/lease deltas into the journal stream.
		var prev netcluster.Stats
		opts.OnJournalRecord = func(rec *obs.GenerationRecord) {
			st := master.Stats()
			rec.Workers = st.WorkersConnected
			rec.TasksReissued = st.TasksReissued - prev.TasksReissued
			rec.LeasesExpired = st.LeasesExpired - prev.LeasesExpired
			prev = st
		}
	}
	// Interrupting a run (SIGINT/SIGTERM) stops it cleanly; a journaled
	// single-population run checkpoints so it can resume with -resume.
	runCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *islands > 1 {
		// Multi-rack mode (paper Section 3.2): one master per rack,
		// syncing after each round.
		icfg := island.Config{
			Islands:      *islands,
			SyncInterval: *syncIv,
			Generations:  *maxGens,
			Cluster:      cluster.Config{Workers: *workers, ThreadsPerWorker: *threads},
			Logger:       logger,
			Metrics:      metrics,
		}
		if *journalDir != "" {
			// One journal per island under DIR/island-<k>; the island
			// model has no checkpoint path, so cadence is disabled.
			journals := make([]*obs.RunJournal, *islands)
			for k := range journals {
				j, err := obs.OpenJournal(filepath.Join(*journalDir, fmt.Sprintf("island-%d", k)),
					obs.JournalOptions{CheckpointEvery: -1, Logger: logger})
				if err != nil {
					log.Fatal(err)
				}
				defer j.Close()
				journals[k] = j
			}
			icfg.Journals = journals
		}
		if *progress > 0 {
			icfg.OnGeneration = func(gen int, best []float64) {
				if gen%*progress == 0 {
					log.Printf("gen %4d: island bests %.4f", gen, best)
				}
			}
		}
		ires, err := island.Run(runCtx,
			core.Problem{Engine: engine, TargetID: targetID, NonTargetIDs: ntIDs},
			opts.GA, icfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("island model: %d masters, %d syncs, best from island %d\n",
			*islands, ires.Migrations, ires.BestIsland)
		fmt.Printf("fitness            %.4f\n", ires.Best.Fitness)
		designed := ires.Best.Seq.WithName("anti-" + *targetName)
		if *outPath != "" {
			if err := saveFASTA(*outPath, designed); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *outPath)
		} else {
			fmt.Printf("sequence: %s\n", designed.Residues())
		}
		return
	}
	designer, err := core.NewDesigner(core.Problem{
		Engine: engine, TargetID: targetID, NonTargetIDs: ntIDs,
	}, opts)
	if err != nil {
		log.Fatal(err)
	}
	var res core.Result
	if *resume {
		cp, err := obs.LoadCheckpoint(*journalDir)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("resuming from %s: generation %d, best fitness %.4f",
			obs.CheckpointPath(*journalDir), cp.Generation, cp.BestFitness)
		res, err = designer.ResumeContext(runCtx, cp)
		if err != nil {
			fatalRun(journal, *journalDir, res, err)
		}
	} else {
		res, err = designer.RunContext(runCtx)
		if err != nil {
			fatalRun(journal, *journalDir, res, err)
		}
	}
	if master != nil {
		st := master.Stats()
		log.Printf("cluster: %d tasks completed, %d re-issued, %d leases expired, %d abandoned, %d worker disconnects, %d drained",
			st.TasksCompleted, st.TasksReissued, st.LeasesExpired, st.TasksQuarantined, st.WorkerDisconnects, st.WorkersDrained)
	}
	if sharded != nil {
		for i, ss := range sharded.ShardStats() {
			log.Printf("shard %d: %d batches dispatched (%d stolen), %d failed, service EWMA %s",
				i, ss.Dispatched, ss.StolenBatches, ss.Failed, time.Duration(ss.EWMAServiceNS))
		}
	}

	fmt.Printf("designed anti-%s after %d generations\n", *targetName, res.Generations)
	fmt.Printf("fitness            %.4f\n", res.BestDetail.Fitness)
	fmt.Printf("PIPE vs target     %.4f\n", res.BestDetail.Target)
	fmt.Printf("max off-target     %.4f\n", res.BestDetail.MaxNonTarget)
	fmt.Printf("avg off-target     %.4f\n", res.BestDetail.AvgNonTarget)
	designed := res.Best.WithName("anti-" + *targetName)
	if *outPath != "" {
		if err := saveFASTA(*outPath, designed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	} else {
		fmt.Printf("sequence: %s\n", designed.Residues())
	}
	if logger.Enabled() {
		for _, stage := range metrics.Stages() {
			h := metrics.Histogram(stage)
			logger.Info("stage timing", "stage", stage, "count", h.Count(),
				"p50", h.Quantile(0.5).String(), "p99", h.Quantile(0.99).String(),
				"total", h.Sum().String())
		}
	}
}

// fatalRun reports a failed or interrupted run and exits, closing the
// journal first (log.Fatal skips deferred closes) and pointing the
// operator at -resume when a checkpoint exists to pick up from.
func fatalRun(journal *obs.RunJournal, dir string, res core.Result, err error) {
	if journal != nil {
		journal.Close()
	}
	if errors.Is(err, context.Canceled) && dir != "" {
		log.Fatalf("interrupted after %d generations; continue with the same flags plus -resume (checkpoint in %s)",
			res.Generations, dir)
	}
	log.Fatal(err)
}
