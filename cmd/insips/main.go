// Command insips designs an inhibitory protein: given a proteome, a
// known-interaction network and a target protein, it evolves a novel
// sequence predicted to bind the target and nothing else (the paper's
// core workflow). Non-targets default to every other protein in the
// proteome, the paper's "all other proteins" recipe, clipped by
// -max-non-targets.
//
// Usage:
//
//	insips -proteome data/proteome.fasta -graph data/interactions.tsv \
//	       -target YBL051C -pop 200 -min-gens 250 -stall 50 \
//	       -out anti-YBL051C.fasta
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/island"
	"repro/internal/pipe"
	"repro/internal/ppigraph"
	"repro/internal/seq"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insips: ")
	var (
		proteomePath = flag.String("proteome", "data/proteome.fasta", "proteome FASTA")
		graphPath    = flag.String("graph", "data/interactions.tsv", "interaction TSV")
		targetName   = flag.String("target", "", "target protein name")
		nonTargets   = flag.String("non-targets", "", "comma-separated non-target names (default: all other proteins)")
		maxNT        = flag.Int("max-non-targets", 25, "cap on the non-target set size")
		dbPath       = flag.String("db", "", "precomputed PIPE similarity database (see cmd/buildpipedb)")
		outPath      = flag.String("out", "", "write the designed protein to this FASTA file")

		pop      = flag.Int("pop", 200, "population size (paper: 1000)")
		seqLen   = flag.Int("len", 150, "designed sequence length")
		pCross   = flag.Float64("p-crossover", 0.5, "crossover probability")
		pMutate  = flag.Float64("p-mutate", 0.4, "mutation probability")
		pCopy    = flag.Float64("p-copy", 0.1, "copy probability")
		pAA      = flag.Float64("p-mutate-aa", 0.05, "per-residue mutation probability")
		seed     = flag.Int64("seed", 1, "random seed")
		minGens  = flag.Int("min-gens", 100, "minimum generations (paper: 250)")
		stall    = flag.Int("stall", 50, "stop after this many generations without a new best")
		maxGens  = flag.Int("max-gens", 400, "hard generation cap")
		warm     = flag.Bool("warm-start", true, "seed the population with natural-fragment chimeras")
		workers  = flag.Int("workers", 2, "worker processes")
		threads  = flag.Int("threads", 2, "threads per worker")
		islands  = flag.Int("islands", 0, "run the multi-rack island model with this many masters (0 = single master)")
		syncIv   = flag.Int("sync-interval", 1, "island mode: generations between master syncs")
		progress = flag.Int("progress", 25, "print progress every N generations (0 = quiet)")
	)
	flag.Parse()
	if *targetName == "" {
		log.Fatal("need -target NAME")
	}

	proteins, err := seq.LoadFASTAFile(*proteomePath)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := ppigraph.LoadTSVFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	var engine *pipe.Engine
	if *dbPath != "" {
		log.Printf("loading PIPE similarity database %s...", *dbPath)
		engine, err = pipe.NewFromDBFile(proteins, graph, pipe.Config{}, *dbPath)
		if errors.Is(err, pipe.ErrStaleDB) {
			log.Fatalf("stale database %s: it was built for a different proteome or configuration; rebuild with cmd/buildpipedb (%v)",
				*dbPath, err)
		}
	} else {
		log.Printf("building PIPE engine over %d proteins, %d interactions...",
			len(proteins), graph.NumEdges())
		engine, err = pipe.New(proteins, graph, pipe.Config{}, 0)
	}
	if err != nil {
		log.Fatal(err)
	}
	targetID, ok := graph.ID(*targetName)
	if !ok {
		log.Fatalf("target %q not in the proteome", *targetName)
	}
	var ntIDs []int
	if *nonTargets != "" {
		for _, name := range strings.Split(*nonTargets, ",") {
			id, ok := graph.ID(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("non-target %q not in the proteome", name)
			}
			ntIDs = append(ntIDs, id)
		}
	} else {
		for id := 0; id < graph.NumProteins() && len(ntIDs) < *maxNT; id++ {
			if id != targetID {
				ntIDs = append(ntIDs, id)
			}
		}
	}

	opts := core.Options{
		GA: ga.Params{
			PopulationSize:  *pop,
			PCopy:           *pCopy,
			PMutate:         *pMutate,
			PCrossover:      *pCross,
			PMutateAA:       *pAA,
			SeqLen:          *seqLen,
			CrossoverMargin: 10,
			Seed:            *seed,
		},
		WarmStart:   *warm,
		Cluster:     cluster.Config{Workers: *workers, ThreadsPerWorker: *threads},
		Termination: ga.Termination{MinGenerations: *minGens, StallGenerations: *stall, MaxGenerations: *maxGens},
	}
	if *progress > 0 {
		opts.OnGeneration = func(cp core.CurvePoint) {
			if cp.Generation%*progress == 0 {
				log.Printf("gen %4d: fitness %.4f  target %.4f  maxNT %.4f",
					cp.Generation, cp.Fitness, cp.Target, cp.MaxNonTarget)
			}
		}
	}
	if *islands > 1 {
		// Multi-rack mode (paper Section 3.2): one master per rack,
		// syncing after each round.
		ires, err := island.Run(
			core.Problem{Engine: engine, TargetID: targetID, NonTargetIDs: ntIDs},
			opts.GA,
			island.Config{
				Islands:      *islands,
				SyncInterval: *syncIv,
				Generations:  *maxGens,
				Cluster:      cluster.Config{Workers: *workers, ThreadsPerWorker: *threads},
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("island model: %d masters, %d syncs, best from island %d\n",
			*islands, ires.Migrations, ires.BestIsland)
		fmt.Printf("fitness            %.4f\n", ires.Best.Fitness)
		designed := ires.Best.Seq.WithName("anti-" + *targetName)
		if *outPath != "" {
			if err := seq.SaveFASTAFile(*outPath, []seq.Sequence{designed}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *outPath)
		} else {
			fmt.Printf("sequence: %s\n", designed.Residues())
		}
		return
	}
	res, err := core.Design(engine, targetID, ntIDs, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("designed anti-%s after %d generations\n", *targetName, res.Generations)
	fmt.Printf("fitness            %.4f\n", res.BestDetail.Fitness)
	fmt.Printf("PIPE vs target     %.4f\n", res.BestDetail.Target)
	fmt.Printf("max off-target     %.4f\n", res.BestDetail.MaxNonTarget)
	fmt.Printf("avg off-target     %.4f\n", res.BestDetail.AvgNonTarget)
	designed := res.Best.WithName("anti-" + *targetName)
	if *outPath != "" {
		if err := seq.SaveFASTAFile(*outPath, []seq.Sequence{designed}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	} else {
		fmt.Printf("sequence: %s\n", designed.Residues())
	}
}
