package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/seq"
)

func TestSaveFASTACreatesMissingDirectories(t *testing.T) {
	s, err := seq.New("anti-X", "ACDEFGHIKLMNPQRSTVWY")
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "results", "run1", "anti-X.fasta")
	if err := saveFASTA(out, s); err != nil {
		t.Fatalf("saveFASTA into a fresh directory tree: %v", err)
	}
	loaded, err := seq.LoadFASTAFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Residues() != s.Residues() {
		t.Fatalf("round trip mismatch: %+v", loaded)
	}
}

func TestEnsureParentDir(t *testing.T) {
	// Bare file names and current-directory paths need no directory.
	if err := ensureParentDir("out.fasta"); err != nil {
		t.Fatalf("bare name: %v", err)
	}
	dir := t.TempDir()
	nested := filepath.Join(dir, "a", "b", "c.fasta")
	if err := ensureParentDir(nested); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Dir(nested)); err != nil || !fi.IsDir() {
		t.Fatalf("parent not created: %v", err)
	}
	// Idempotent on existing directories.
	if err := ensureParentDir(nested); err != nil {
		t.Fatalf("existing parent: %v", err)
	}
}
