// Command benchpipe maintains BENCH_PIPE.json, the committed record of
// the PIPE scoring-kernel benchmarks, and gates CI on kernel
// regressions.
//
// Modes:
//
//	benchpipe -update            run the benchmark suite and rewrite the
//	                             "after" medians in BENCH_PIPE.json
//	benchpipe -check             run the suite and fail if the measured
//	                             BenchmarkPIPEScore median ns/op regresses
//	                             more than -tolerance vs the committed
//	                             "after" numbers, or if a relative gate
//	                             (Searcher seam vs direct GA loop) exceeds
//	                             its own tolerance within the run
//	benchpipe -check -input f    same, but parse an existing `go test
//	                             -bench` output file instead of running
//	                             (CI runs the suite once, then checks)
//
// The "before" block holds the seed (map-kernel) medians and is never
// rewritten by this tool; it exists so the JSON file documents the
// speedup alongside the current numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

const (
	benchFile  = "BENCH_PIPE.json"
	benchRegex = "PIPEScore$|ScoreBatch$|WindowCache$|Fig3ThreadScaling|Fig7LearningCurve|QueryPreprocess|BackendDispatch|ElasticDispatch|SurrogatePredict|SurrogateTrain|SearcherOverhead"
)

// gateBenches are the benchmarks -check fails on: the per-pair scoring
// kernel and the batched generation path the GA actually drives.
var gateBenches = []string{"BenchmarkPIPEScore", "BenchmarkScoreBatch"}

// relativeGates pin one benchmark's median to a fraction of another's
// from the same run, so the gate is immune to machine speed. The GA
// driven through the search.Searcher seam must stay within 2% of the
// engine driven directly.
var relativeGates = []struct {
	name, base string
	tolerance  float64
}{
	{"BenchmarkSearcherOverhead/searcher", "BenchmarkSearcherOverhead/direct", 0.02},
}

// Stat is the median of one benchmark's repetitions.
type Stat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Record pairs the seed-kernel medians with the current kernel's.
type Record struct {
	Before *Stat `json:"before,omitempty"`
	After  *Stat `json:"after,omitempty"`
}

// File is the BENCH_PIPE.json schema.
type File struct {
	Note       string            `json:"note"`
	Go         string            `json:"go"`
	Count      int               `json:"count"`
	Benchmarks map[string]Record `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	var (
		update    = flag.Bool("update", false, "run the suite and rewrite the 'after' medians")
		check     = flag.Bool("check", false, "fail on ns/op regression of "+strings.Join(gateBenches, ", "))
		input     = flag.String("input", "", "parse this `go test -bench` output instead of running")
		count     = flag.Int("count", 6, "benchmark repetitions when running the suite")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression in -check mode")
	)
	flag.Parse()
	if *update == *check {
		fatal("exactly one of -update or -check is required")
	}

	var out []byte
	if *input != "" {
		b, err := os.ReadFile(*input)
		if err != nil {
			fatal("read -input: %v", err)
		}
		out = b
	} else {
		fmt.Fprintf(os.Stderr, "benchpipe: running benchmark suite (count=%d)...\n", *count)
		cmd := exec.Command("go", "test", ".", "-run", "^$",
			"-bench", benchRegex, "-benchmem", "-count", strconv.Itoa(*count))
		cmd.Stderr = os.Stderr
		b, err := cmd.Output()
		if err != nil {
			fatal("go test -bench: %v", err)
		}
		out = b
	}

	medians := parseMedians(string(out))
	if len(medians) == 0 {
		fatal("no benchmark lines parsed")
	}
	for _, gate := range gateBenches {
		if _, ok := medians[gate]; !ok {
			fatal("benchmark output has no %s results", gate)
		}
	}

	if *update {
		file := readFile()
		file.Go = runtime.Version()
		file.Count = *count
		if file.Note == "" {
			file.Note = "Medians over -count repetitions of the PIPE kernel benchmarks. " +
				"'before' is the seed map-based kernel, 'after' the CSR kernel; " +
				"regenerate 'after' with: go run ./cmd/benchpipe -update"
		}
		if file.Benchmarks == nil {
			file.Benchmarks = map[string]Record{}
		}
		for name, st := range medians {
			rec := file.Benchmarks[name]
			s := st
			rec.After = &s
			file.Benchmarks[name] = rec
		}
		writeFile(file)
		fmt.Printf("benchpipe: updated %s (%d benchmarks)\n", benchFile, len(medians))
		return
	}

	// -check: compare each measured gate benchmark against the committed
	// "after" numbers.
	file := readFile()
	failed := false
	for _, gate := range gateBenches {
		rec, ok := file.Benchmarks[gate]
		if !ok || rec.After == nil {
			fatal("%s has no committed 'after' record for %s; run benchpipe -update", benchFile, gate)
		}
		got := medians[gate].NsPerOp
		want := rec.After.NsPerOp
		ratio := got/want - 1
		fmt.Printf("benchpipe: %s median %.0f ns/op vs committed %.0f ns/op (%+.1f%%)\n",
			gate, got, want, 100*ratio)
		if ratio > *tolerance {
			fmt.Fprintf(os.Stderr, "benchpipe: %s regressed %.1f%% (tolerance %.0f%%)\n",
				gate, 100*ratio, 100**tolerance)
			failed = true
		}
	}
	for _, rg := range relativeGates {
		got, ok := medians[rg.name]
		if !ok {
			fatal("benchmark output has no %s results", rg.name)
		}
		base, ok := medians[rg.base]
		if !ok {
			fatal("benchmark output has no %s results", rg.base)
		}
		ratio := got.NsPerOp/base.NsPerOp - 1
		fmt.Printf("benchpipe: %s median %.0f ns/op vs %s %.0f ns/op (%+.1f%%)\n",
			rg.name, got.NsPerOp, rg.base, base.NsPerOp, 100*ratio)
		if ratio > rg.tolerance {
			fmt.Fprintf(os.Stderr, "benchpipe: %s is %.1f%% over %s (tolerance %.0f%%)\n",
				rg.name, 100*ratio, rg.base, 100*rg.tolerance)
			failed = true
		}
	}
	for _, name := range sortedNames(medians) {
		if isGate(name) {
			continue
		}
		if r, ok := file.Benchmarks[name]; ok && r.After != nil {
			fmt.Printf("benchpipe: %-40s %12.0f ns/op (committed %12.0f)\n", name, medians[name].NsPerOp, r.After.NsPerOp)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchpipe: OK")
}

func isGate(name string) bool {
	for _, g := range gateBenches {
		if g == name {
			return true
		}
	}
	return false
}

func parseMedians(out string) map[string]Stat {
	samples := map[string][]Stat{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		st := Stat{NsPerOp: atof(m[2]), BytesPerOp: atof(m[3]), AllocsPerOp: atof(m[4])}
		samples[m[1]] = append(samples[m[1]], st)
	}
	medians := make(map[string]Stat, len(samples))
	for name, ss := range samples {
		medians[name] = Stat{
			NsPerOp:     median(ss, func(s Stat) float64 { return s.NsPerOp }),
			BytesPerOp:  median(ss, func(s Stat) float64 { return s.BytesPerOp }),
			AllocsPerOp: median(ss, func(s Stat) float64 { return s.AllocsPerOp }),
		}
	}
	return medians
}

func median(ss []Stat, f func(Stat) float64) float64 {
	vs := make([]float64, len(ss))
	for i, s := range ss {
		vs[i] = f(s)
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

func sortedNames(m map[string]Stat) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func readFile() File {
	var f File
	b, err := os.ReadFile(benchFile)
	if err != nil {
		if os.IsNotExist(err) {
			return f
		}
		fatal("read %s: %v", benchFile, err)
	}
	if err := json.Unmarshal(b, &f); err != nil {
		fatal("parse %s: %v", benchFile, err)
	}
	return f
}

func writeFile(f File) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	if err := os.WriteFile(benchFile, append(b, '\n'), 0o644); err != nil {
		fatal("write %s: %v", benchFile, err)
	}
}

func atof(s string) float64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchpipe: "+format+"\n", args...)
	os.Exit(1)
}
