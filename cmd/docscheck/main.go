// Command docscheck is the repository's documentation lint, run by the
// CI docs job:
//
//	go run ./cmd/docscheck            # check the working tree
//	go run ./cmd/docscheck -root dir  # check another checkout
//
// It enforces three invariants the test suite cannot:
//
//  1. Every package (except external _test packages) carries a package
//     doc comment, so `go doc` works everywhere.
//  2. Every CLI flag registered by a cmd/ binary appears in README.md's
//     flag table as `-name`, so the README cannot silently fall behind
//     the binaries. Flags are discovered by parsing the source for
//     flag.String/Bool/... calls — adding a flag without documenting it
//     fails CI.
//  3. Every HTTP route insipsd registers (the "METHOD /path" patterns
//     passed to mux.HandleFunc in internal/server) appears verbatim in
//     docs/API.md, so the API reference cannot silently fall behind the
//     service — adding a route without documenting it fails CI.
//
// Exit status is non-zero when any violation is found; each violation
// prints one line.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	checkPackageDocs(*root, report)
	checkREADMEFlags(*root, report)
	checkAPIRoutes(*root, report)

	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// goDirs returns every directory under root containing .go files,
// skipping hidden directories and testdata.
func goDirs(root string, report func(string, ...any)) []string {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		report("docscheck: walking %s: %v", root, err)
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs
}

// checkPackageDocs requires a package doc comment on every package.
// External test packages (package foo_test) are exempt: they document
// nothing importable.
func checkPackageDocs(root string, report func(string, ...any)) {
	for _, dir := range goDirs(root, report) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			report("docscheck: parsing %s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				report("docscheck: package %s (%s) has no package doc comment", name, dir)
			}
		}
	}
}

// flagFuncs are the flag-registration functions whose first argument is
// the flag name.
var flagFuncs = map[string]bool{
	"String": true, "Bool": true, "Int": true, "Int64": true,
	"Uint": true, "Uint64": true, "Float64": true, "Duration": true,
	"StringVar": true, "BoolVar": true, "IntVar": true, "Int64Var": true,
	"UintVar": true, "Uint64Var": true, "Float64Var": true, "DurationVar": true,
}

// binaryFlags parses one cmd/<name> directory and returns the names of
// every flag it registers.
func binaryFlags(dir string, report func(string, ...any)) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		report("docscheck: parsing %s: %v", dir, err)
		return nil
	}
	var names []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !flagFuncs[sel.Sel.Name] {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok || ident.Name != "flag" {
					return true
				}
				argIdx := 0
				if strings.HasSuffix(sel.Sel.Name, "Var") {
					argIdx = 1 // (pointer, name, ...)
				}
				if len(call.Args) <= argIdx {
					return true
				}
				lit, ok := call.Args[argIdx].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err == nil && name != "" {
					names = append(names, name)
				}
				return true
			})
		}
	}
	sort.Strings(names)
	return names
}

// serverRoutes parses internal/server and returns every "METHOD /path"
// pattern registered with a HandleFunc call (the Go 1.22 ServeMux
// method-pattern convention).
func serverRoutes(root string, report func(string, ...any)) []string {
	dir := filepath.Join(root, "internal", "server")
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		report("docscheck: parsing %s: %v", dir, err)
		return nil
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "HandleFunc" || len(call.Args) < 1 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				pattern, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				// Only "METHOD /path" patterns count as routes.
				method, _, found := strings.Cut(pattern, " ")
				if found && method == strings.ToUpper(method) && method != "" {
					seen[pattern] = true
				}
				return true
			})
		}
	}
	routes := make([]string, 0, len(seen))
	for r := range seen {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	return routes
}

// checkAPIRoutes requires every registered insipsd route to appear
// verbatim (as "METHOD /path") in docs/API.md.
func checkAPIRoutes(root string, report func(string, ...any)) {
	api, err := os.ReadFile(filepath.Join(root, "docs", "API.md"))
	if err != nil {
		report("docscheck: %v", err)
		return
	}
	body := string(api)
	for _, route := range serverRoutes(root, report) {
		if !strings.Contains(body, route) {
			report("docscheck: route %q is not documented in docs/API.md", route)
		}
	}
}

// checkREADMEFlags requires every flag of every cmd/ binary to appear in
// README.md as `-name` (the flag-table convention).
func checkREADMEFlags(root string, report func(string, ...any)) {
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		report("docscheck: %v", err)
		return
	}
	body := string(readme)
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		report("docscheck: %v", err)
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, "cmd", e.Name())
		for _, name := range binaryFlags(dir, report) {
			if !strings.Contains(body, "`-"+name+"`") {
				report("docscheck: flag -%s of cmd/%s is not documented in README.md (want `-%s`)",
					name, e.Name(), name)
			}
		}
	}
}
