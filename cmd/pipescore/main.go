// Command pipescore loads a proteome and interaction network and prints
// the PIPE interaction score of one protein pair, or of a query sequence
// against a database protein.
//
// Usage:
//
//	pipescore -proteome data/proteome.fasta -graph data/interactions.tsv \
//	          -a YBL051C -b YAL017W
//	pipescore -proteome ... -graph ... -query inhibitor.fasta -b YBL051C
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/pipe"
	"repro/internal/ppigraph"
	"repro/internal/seq"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipescore: ")
	var (
		proteomePath = flag.String("proteome", "data/proteome.fasta", "proteome FASTA")
		graphPath    = flag.String("graph", "data/interactions.tsv", "interaction TSV")
		aName        = flag.String("a", "", "first protein name (in the proteome)")
		bName        = flag.String("b", "", "second protein name (in the proteome)")
		queryPath    = flag.String("query", "", "FASTA with a novel query sequence (replaces -a)")
		threads      = flag.Int("threads", 0, "worker threads (0 = all cores)")
	)
	flag.Parse()

	proteins, err := seq.LoadFASTAFile(*proteomePath)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := ppigraph.LoadTSVFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := pipe.New(proteins, graph, pipe.Config{}, *threads)
	if err != nil {
		log.Fatal(err)
	}
	bID, ok := graph.ID(*bName)
	if !ok {
		log.Fatalf("protein %q not in the proteome", *bName)
	}

	switch {
	case *queryPath != "":
		queries, err := seq.LoadFASTAFile(*queryPath)
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range queries {
			score := engine.Score(q, bID, *threads)
			fmt.Printf("PIPE(%s, %s) = %.4f\n", q.Name(), *bName, score)
		}
	case *aName != "":
		aID, ok := graph.ID(*aName)
		if !ok {
			log.Fatalf("protein %q not in the proteome", *aName)
		}
		fmt.Printf("PIPE(%s, %s) = %.4f\n", *aName, *bName, engine.ScorePair(aID, bID))
		fmt.Printf("known interaction in the database: %v\n", graph.HasEdge(aID, bID))
	default:
		log.Fatal("need -a NAME or -query FILE")
	}
}
