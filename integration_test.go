package repro

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/netcluster"
	"repro/internal/pipe"
	"repro/internal/seq"
	"repro/internal/wetlab"
	"repro/internal/yeastgen"
)

// TestEndToEndPipeline drives the full system exactly as a user would:
// synthesize the proteome, build (and round-trip) the PIPE engine,
// design an inhibitor over the TCP master/worker deployment, and
// validate it in the simulated wet lab. This is the repository's
// integration smoke test; each stage's correctness details live in the
// per-package suites.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline skipped in -short mode")
	}

	// 1. Substrate: proteome + known-interaction network.
	proteome, err := yeastgen.Generate(yeastgen.TestParams())
	if err != nil {
		t.Fatal(err)
	}

	// 2. PIPE engine, with the offline database round trip.
	engine, err := pipe.New(proteome.Proteins, proteome.Graph, pipe.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var db bytes.Buffer
	if err := engine.SaveDB(&db); err != nil {
		t.Fatal(err)
	}
	engine, err = pipe.NewFromDB(proteome.Proteins, proteome.Graph, pipe.Config{}, &db)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Problem: the planted wet-lab target and its cytoplasmic
	// neighbors.
	target := proteome.WetlabTargetIDs()[0]
	var nonTargets []int
	for _, id := range proteome.ComponentMembers(proteome.Component(target)) {
		if id != target && len(nonTargets) < 8 {
			nonTargets = append(nonTargets, id)
		}
	}

	// 4. Distributed evaluation: TCP master + two workers score one
	// population; scores must agree with the in-process pool.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master := netcluster.NewMaster(netcluster.NewSetup(engine, target, nonTargets, 2), ln)
	for w := 0; w < 2; w++ {
		go netcluster.RunWorker(master.Addr())
	}
	deadline := time.Now().Add(30 * time.Second)
	for master.Workers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not connect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rng := rand.New(rand.NewSource(9))
	candidates := core.NaturalFragmentPopulation(engine, rng, 6, 130)
	remote, err := master.EvaluateAll(candidates)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cluster.New(engine, target, nonTargets, cluster.Config{Workers: 2, ThreadsPerWorker: 2})
	if err != nil {
		t.Fatal(err)
	}
	local := pool.EvaluateAll(candidates)
	for i := range candidates {
		if remote[i].TargetScore != local[i].TargetScore {
			t.Fatalf("candidate %d: remote %v != local %v", i, remote[i].TargetScore, local[i].TargetScore)
		}
	}
	master.Close()

	// 5. Design with the production parameter mix (scaled down).
	params := ga.DefaultParams()
	params.PopulationSize = 80
	params.SeqLen = 130
	params.Seed = 3
	design, err := core.Design(engine, target, nonTargets, core.Options{
		GA:          params,
		WarmStart:   true,
		Cluster:     cluster.Config{Workers: 2, ThreadsPerWorker: 2},
		Termination: ga.Termination{MinGenerations: 40, StallGenerations: 30, MaxGenerations: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if design.BestDetail.Fitness < 0.3 {
		t.Fatalf("design fitness %.3f too low for the planted target", design.BestDetail.Fitness)
	}
	if design.BestDetail.MaxNonTarget >= design.BestDetail.Target {
		t.Fatal("design is not specific")
	}

	// 6. Ground truth and wet lab: the designed protein must truly bind
	// and sensitize the InSiPS strain.
	if !proteome.TrulyBinds(design.Best, target) {
		t.Fatalf("designed protein does not truly bind (affinity gap); fitness %.3f",
			design.BestDetail.Fitness)
	}
	assay := wetlab.Experiment{
		Proteome:  proteome,
		TargetID:  target,
		Inhibitor: design.Best,
		Stressor:  wetlab.Cycloheximide65(),
		Seed:      11,
	}
	table := assay.Run(5)
	if !table.InhibitionObserved(0.08) {
		avg := table.Averages()
		t.Fatalf("wet lab does not show inhibition: WT %.2f, WT+ %.2f, InSiPS %.2f, KO %.2f",
			avg[wetlab.WT], avg[wetlab.WTPlasmid], avg[wetlab.WTInSiPS], avg[wetlab.Knockout])
	}

	// 7. A random protein control must not show inhibition.
	control := assay
	control.Inhibitor = seq.Random(rng, "control", 130, seq.YeastComposition())
	if control.Run(5).InhibitionObserved(0.08) {
		t.Fatal("random control protein shows inhibition")
	}
}
