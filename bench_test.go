// Benchmarks regenerating each of the paper's tables and figures (see
// DESIGN.md §4 for the exhibit index) plus ablations of the design
// choices DESIGN.md §7 calls out. Run:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigN/BenchmarkTableN measures the work behind that
// exhibit at smoke scale; cmd/experiments produces the full-scale data.
package repro

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bgqsim"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/evalbackend"
	"repro/internal/ga"
	"repro/internal/pipe"
	"repro/internal/search"
	"repro/internal/seq"
	"repro/internal/simindex"
	"repro/internal/submat"
	"repro/internal/surrogate"
	"repro/internal/wetlab"
	"repro/internal/yeastgen"
)

var (
	benchOnce   sync.Once
	benchProt   *yeastgen.Proteome
	benchEngine *pipe.Engine
)

func benchSetup(b *testing.B) (*yeastgen.Proteome, *pipe.Engine) {
	b.Helper()
	benchOnce.Do(func() {
		pr, err := yeastgen.Generate(yeastgen.TestParams())
		if err != nil {
			panic(err)
		}
		eng, err := pipe.New(pr.Proteins, pr.Graph, pipe.Config{}, 0)
		if err != nil {
			panic(err)
		}
		benchProt, benchEngine = pr, eng
	})
	return benchProt, benchEngine
}

// BenchmarkFig2FitnessGrid regenerates the Figure 2 fitness heat map.
func BenchmarkFig2FitnessGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grid := core.FitnessGrid(101)
		if grid[0][100] != 1 {
			b.Fatal("fitness peak wrong")
		}
	}
}

// BenchmarkFig3ThreadScaling measures the Figure 3 unit of work — one
// full worker task (preprocess a candidate, PIPE against the whole
// proteome) — for the easiest and hardest difficulty classes.
func BenchmarkFig3ThreadScaling(b *testing.B) {
	pr, eng := benchSetup(b)
	all := make([]int, len(pr.Proteins))
	for i := range all {
		all[i] = i
	}
	for _, d := range []yeastgen.Difficulty{yeastgen.DifficultyEasiest, yeastgen.DifficultyHardest} {
		b.Run(d.PaperName(), func(b *testing.B) {
			q := pr.DifficultySequence(rand.New(rand.NewSource(1)), d, 200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ScoreMany(q, all, 1)
			}
		})
	}
}

// BenchmarkFig4NodeModel evaluates the Figure 4 thread-speedup model.
func BenchmarkFig4NodeModel(b *testing.B) {
	node := bgqsim.BGQNode()
	for i := 0; i < b.N; i++ {
		for t := 1; t <= 64; t++ {
			if node.Speedup(t) <= 0 {
				b.Fatal("bad speedup")
			}
		}
	}
}

// BenchmarkFig5WorkerScaling runs the Figure 5/6 discrete-event
// simulation of one 1024-node generation.
func BenchmarkFig5WorkerScaling(b *testing.B) {
	w := bgqsim.PaperPopulations()["gen250"]
	for i := 0; i < b.N; i++ {
		p := bgqsim.DefaultClusterParams(1024)
		p.Seed = int64(i + 1)
		if _, err := bgqsim.SimulateGeneration(p, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6SpeedupCurve runs the full Figure 6 node sweep.
func BenchmarkFig6SpeedupCurve(b *testing.B) {
	w := bgqsim.PaperPopulations()["gen1"]
	counts := bgqsim.PaperNodeCounts()
	for i := 0; i < b.N; i++ {
		if _, _, err := bgqsim.SpeedupCurve(counts, bgqsim.DefaultClusterParams(64), w); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTuningRun is one Table 1-3 cell: a short design run with a given
// parameter set and seed.
func benchTuningRun(b *testing.B, pCross, pMut float64, seed int64) {
	pr, eng := benchSetup(b)
	target := pr.WetlabTargetIDs()[0]
	gp := ga.Params{
		PopulationSize:  24,
		PCopy:           0.10,
		PMutate:         pMut,
		PCrossover:      pCross,
		PMutateAA:       0.05,
		SeqLen:          130,
		CrossoverMargin: 10,
		Seed:            seed,
	}
	var nts []int
	for _, id := range pr.ComponentMembers(pr.Component(target)) {
		if id != target && len(nts) < 5 {
			nts = append(nts, id)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp.Seed = seed + int64(i)
		_, err := core.Design(eng, target, nts, core.Options{
			GA:          gp,
			WarmStart:   true,
			Cluster:     cluster.Config{Workers: 1, ThreadsPerWorker: 1},
			Termination: ga.Termination{MaxGenerations: 5},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ParamTuning exercises the Table 1 grid's balanced set.
func BenchmarkTable1ParamTuning(b *testing.B) { benchTuningRun(b, 0.45, 0.45, 100) }

// BenchmarkTable2ParamTuning exercises the Table 2 grid's
// crossover-heavy set.
func BenchmarkTable2ParamTuning(b *testing.B) { benchTuningRun(b, 0.75, 0.15, 200) }

// BenchmarkTable3ParamTuning exercises the Table 3 grid's mutation-heavy
// set.
func BenchmarkTable3ParamTuning(b *testing.B) { benchTuningRun(b, 0.15, 0.75, 300) }

// BenchmarkFig7LearningCurve measures a production-parameter design
// generation (the unit the Figure 7 curves are made of).
func BenchmarkFig7LearningCurve(b *testing.B) {
	pr, eng := benchSetup(b)
	target := pr.WetlabTargetIDs()[0]
	var nts []int
	for _, id := range pr.ComponentMembers(pr.Component(target)) {
		if id != target && len(nts) < 8 {
			nts = append(nts, id)
		}
	}
	gp := ga.DefaultParams()
	gp.PopulationSize = 40
	gp.SeqLen = 130
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp.Seed = int64(i + 1)
		_, err := core.Design(eng, target, nts, core.Options{
			GA:          gp,
			WarmStart:   true,
			Cluster:     cluster.Config{Workers: 1, ThreadsPerWorker: 1},
			Termination: ga.Termination{MaxGenerations: 3},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchOverheadEval is a deterministic evaluator cheap enough that the
// generation loop's own bookkeeping dominates each op — the quantity
// BenchmarkSearcherOverhead compares across the Searcher seam.
func benchOverheadEval(seqs []seq.Sequence) []float64 {
	out := make([]float64, len(seqs))
	for i, s := range seqs {
		h := 0.0
		for _, r := range s.Residues() {
			h = h*0.99 + float64(r)
		}
		out[i] = h / (h + 1e6)
	}
	return out
}

// BenchmarkSearcherOverhead runs the same GA twice: driving ga.Engine
// directly (the pre-refactor loop) and through the search.Searcher
// adapter. cmd/benchpipe -check gates the searcher variant to within 2%
// of the direct loop, bounding the seam's cost.
func BenchmarkSearcherOverhead(b *testing.B) {
	gp := ga.DefaultParams()
	gp.PopulationSize = 64
	gp.SeqLen = 60
	const gens = 40
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gp.Seed = int64(i + 1)
			eng, err := ga.New(gp, ga.EvaluatorFunc(benchOverheadEval))
			if err != nil {
				b.Fatal(err)
			}
			eng.InitPopulation()
			for g := 0; g < gens; g++ {
				eng.Step()
			}
		}
	})
	b.Run("searcher", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gp.Seed = int64(i + 1)
			s, err := search.New(search.Config{}, gp, ga.EvaluatorFunc(benchOverheadEval))
			if err != nil {
				b.Fatal(err)
			}
			s.InitPopulation()
			for g := 0; g < gens; g++ {
				s.Step()
			}
		}
	})
}

// benchAssay builds the Table 4/5 wet-lab experiment with an ideal
// inhibitor (assay cost only; design cost is Fig7's benchmark).
func benchAssay(b *testing.B, stressor wetlab.Stressor) {
	pr, _ := benchSetup(b)
	target := pr.WetlabTargetIDs()[0]
	cStar := pr.ComplementOf(pr.WetlabTargetMotif(0))
	body := []byte(seq.Random(rand.New(rand.NewSource(2)), "anti", 140, seq.YeastComposition()).Residues())
	copy(body[40:], pr.MasterMotif(cStar).Residues())
	exp := wetlab.Experiment{
		Proteome:  pr,
		TargetID:  target,
		Inhibitor: seq.MustNew("anti", string(body)),
		Stressor:  stressor,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Seed = int64(i + 1)
		table := exp.Run(5)
		if len(table.Rows) != 5 {
			b.Fatal("bad assay")
		}
	}
}

// BenchmarkTable4Cycloheximide runs the Table 4 (and Figure 8) assay.
func BenchmarkTable4Cycloheximide(b *testing.B) { benchAssay(b, wetlab.Cycloheximide65()) }

// BenchmarkTable5UV runs the Table 5 (and Figure 9) assay.
func BenchmarkTable5UV(b *testing.B) { benchAssay(b, wetlab.UV30s()) }

// BenchmarkFig10SpotTest runs the Figure 10 dilution series.
func BenchmarkFig10SpotTest(b *testing.B) {
	pr, _ := benchSetup(b)
	exp := wetlab.Experiment{
		Proteome:  pr,
		TargetID:  pr.WetlabTargetIDs()[0],
		Inhibitor: pr.Proteins[1],
		Stressor:  wetlab.UV30s(),
		Seed:      1,
	}
	for i := 0; i < b.N; i++ {
		exp.SpotTest(4)
	}
}

// --- Ablations (DESIGN.md §7) ---------------------------------------

// BenchmarkAblationMatrix compares PAM120 (the paper's choice) against
// BLOSUM62 for engine scoring.
func BenchmarkAblationMatrix(b *testing.B) {
	pr, _ := benchSetup(b)
	for _, m := range []*submat.Matrix{submat.PAM120(), submat.BLOSUM62()} {
		b.Run(m.Name(), func(b *testing.B) {
			eng, err := pipe.New(pr.Proteins, pr.Graph,
				pipe.Config{Index: simindex.Config{Matrix: m}}, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ScorePair(i%20, (i+7)%20)
			}
		})
	}
}

// BenchmarkAblationFilter compares the 3x3 box filter against raw cells.
func BenchmarkAblationFilter(b *testing.B) {
	pr, _ := benchSetup(b)
	for _, cfg := range []struct {
		name       string
		unfiltered bool
	}{{"filtered", false}, {"unfiltered", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			eng, err := pipe.New(pr.Proteins, pr.Graph, pipe.Config{Unfiltered: cfg.unfiltered}, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ScorePair(i%20, (i+7)%20)
			}
		})
	}
}

// BenchmarkAblationIndex compares seeded window search against brute
// force — the similarity-database design choice.
func BenchmarkAblationIndex(b *testing.B) {
	pr, eng := benchSetup(b)
	q := pr.Proteins[0]
	b.Run("seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.Index().SequenceSimilarity(q, 1)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.Index().BruteSequenceSimilarity(q, 1)
		}
	})
}

// BenchmarkAblationDispatch compares the paper's on-demand dispatch
// against static round-robin partitioning; compare the reported
// makespan_ns metric, not just wall time.
func BenchmarkAblationDispatch(b *testing.B) {
	pr, eng := benchSetup(b)
	pool, err := cluster.New(eng, 0, []int{1, 2, 3}, cluster.Config{Workers: 4, ThreadsPerWorker: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Heterogeneous candidate costs: mix difficulty classes.
	rng := rand.New(rand.NewSource(3))
	var seqs []seq.Sequence
	for i := 0; i < 16; i++ {
		d := yeastgen.Difficulty(i % int(yeastgen.NumDifficulties))
		seqs = append(seqs, pr.DifficultySequence(rng, d, 160))
	}
	b.Run("on-demand", func(b *testing.B) {
		var makespan int64
		for i := 0; i < b.N; i++ {
			rep := pool.EvaluateAllReport(seqs)
			makespan += int64(rep.Makespan())
		}
		b.ReportMetric(float64(makespan)/float64(b.N), "makespan_ns")
	})
	b.Run("static", func(b *testing.B) {
		var makespan int64
		for i := 0; i < b.N; i++ {
			rep := pool.EvaluateAllStatic(seqs)
			makespan += int64(rep.Makespan())
		}
		b.ReportMetric(float64(makespan)/float64(b.N), "makespan_ns")
	})
}

// BenchmarkBackendDispatch measures what the evaluation backend
// abstraction costs per generation: a raw pool round versus the same
// pool behind a Backend, versus a two-way sharded composite. The deltas
// are the dispatch overhead — scores are identical on every variant.
func BenchmarkBackendDispatch(b *testing.B) {
	pr, eng := benchSetup(b)
	rng := rand.New(rand.NewSource(3))
	var seqs []seq.Sequence
	for i := 0; i < 16; i++ {
		d := yeastgen.Difficulty(i % int(yeastgen.NumDifficulties))
		seqs = append(seqs, pr.DifficultySequence(rng, d, 160))
	}
	cfg := cluster.Config{Workers: 2, ThreadsPerWorker: 1}
	b.Run("pool-direct", func(b *testing.B) {
		pool, err := cluster.New(eng, 0, []int{1, 2, 3}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.EvaluateAll(seqs)
		}
	})
	b.Run("backend", func(b *testing.B) {
		be, err := evalbackend.NewPool(eng, 0, []int{1, 2, 3}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := be.EvaluateAll(context.Background(), seqs); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Named without a trailing -<digit>: benchpipe strips the GOMAXPROCS
	// suffix from result lines, and on single-core machines (no suffix) a
	// literal "-2" would be eaten instead, double-recording this variant
	// under two names ("sharded" vs "sharded-2" — the source of a phantom
	// 24.8ms-vs-17.1ms regression in earlier BENCH_PIPE.json snapshots).
	b.Run("two-shard", func(b *testing.B) {
		shards := make([]evalbackend.Backend, 2)
		for k := range shards {
			pb, err := evalbackend.NewPool(eng, 0, []int{1, 2, 3}, cluster.Config{Workers: 1, ThreadsPerWorker: 1})
			if err != nil {
				b.Fatal(err)
			}
			shards[k] = pb
		}
		sh, err := evalbackend.NewSharded(shards...)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sh.EvaluateAll(context.Background(), seqs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkElasticDispatch measures the elastic-dispatch chain end to
// end: a two-shard work-stealing composite versus the same composite
// behind the hedging and retry middleware. The delta is what straggler
// insurance costs on a healthy fleet — scores stay identical.
func BenchmarkElasticDispatch(b *testing.B) {
	pr, eng := benchSetup(b)
	rng := rand.New(rand.NewSource(3))
	var seqs []seq.Sequence
	for i := 0; i < 16; i++ {
		d := yeastgen.Difficulty(i % int(yeastgen.NumDifficulties))
		seqs = append(seqs, pr.DifficultySequence(rng, d, 160))
	}
	newSharded := func(b *testing.B) *evalbackend.Sharded {
		shards := make([]evalbackend.Backend, 2)
		for k := range shards {
			pb, err := evalbackend.NewPool(eng, 0, []int{1, 2, 3}, cluster.Config{Workers: 1, ThreadsPerWorker: 1})
			if err != nil {
				b.Fatal(err)
			}
			shards[k] = pb
		}
		sh, err := evalbackend.NewSharded(shards...)
		if err != nil {
			b.Fatal(err)
		}
		return sh
	}
	b.Run("work-stealing", func(b *testing.B) {
		sh := newSharded(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sh.EvaluateAll(context.Background(), seqs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hedged-retry", func(b *testing.B) {
		sh := newSharded(b)
		spare, err := evalbackend.NewPool(eng, 0, []int{1, 2, 3}, cluster.Config{Workers: 1, ThreadsPerWorker: 1})
		if err != nil {
			b.Fatal(err)
		}
		chain := evalbackend.WithRetry(evalbackend.WithHedging(sh, spare, evalbackend.HedgingConfig{}, nil), spare, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := chain.EvaluateAll(context.Background(), seqs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSurrogatePool builds the rotating candidate pool the surrogate
// benchmarks score: production-length random sequences with yeast
// composition, plus synthetic score labels derived from a second RNG.
func benchSurrogatePool(n int) (residues []string, targets, maxNTs, avgNTs []float64) {
	rng := rand.New(rand.NewSource(11))
	residues = make([]string, n)
	targets = make([]float64, n)
	maxNTs = make([]float64, n)
	avgNTs = make([]float64, n)
	for i := range residues {
		residues[i] = seq.Random(rng, "cand", 130, seq.YeastComposition()).Residues()
		targets[i] = rng.Float64()
		maxNTs[i] = rng.Float64()
		avgNTs[i] = maxNTs[i] * rng.Float64()
	}
	return residues, targets, maxNTs, avgNTs
}

// BenchmarkSurrogatePredict is the surrogate pre-scorer's hot path: one
// feature extraction plus three linear heads per candidate. Per-candidate
// cost here bounds what filtering a whole generation costs — it must stay
// orders of magnitude under one PIPE evaluation (BenchmarkPIPEScore).
func BenchmarkSurrogatePredict(b *testing.B) {
	residues, targets, maxNTs, avgNTs := benchSurrogatePool(1024)
	m := surrogate.NewModel(surrogate.ModelConfig{})
	for i := range residues {
		m.Observe(residues[i], targets[i], maxNTs[i], avgNTs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(residues[i%len(residues)])
	}
}

// BenchmarkSurrogateTrain is one online SGD update: predict, error, and
// three-head weight step. Dedup is disabled so the rotating pool trains
// on every iteration instead of being skipped as already seen.
func BenchmarkSurrogateTrain(b *testing.B) {
	residues, targets, maxNTs, avgNTs := benchSurrogatePool(1024)
	m := surrogate.NewModel(surrogate.ModelConfig{DedupCapacity: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(residues)
		m.Observe(residues[j], targets[j], maxNTs[j], avgNTs[j])
	}
}

// BenchmarkPIPEScore is the engine's hot path in isolation.
func BenchmarkPIPEScore(b *testing.B) {
	_, eng := benchSetup(b)
	q := eng.DBQuery(0)
	scorer := eng.NewScorer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scorer.Score(q, i%benchProt.Graph.NumProteins())
	}
}

// BenchmarkQueryPreprocess is Algorithm 2's per-candidate preprocessing.
func BenchmarkQueryPreprocess(b *testing.B) {
	pr, eng := benchSetup(b)
	q := seq.Random(rand.New(rand.NewSource(4)), "cand", 150, seq.YeastComposition())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.NewQuery(q, 1)
	}
	_ = pr
}

// BenchmarkScoreBatch is a generation's worth of candidates scored
// through the batched path: shared window-cache lookups, per-generation
// window dedup, and batch preprocessing ahead of the score kernel. Its
// counterpart per-candidate cost is BenchmarkQueryPreprocess +
// BenchmarkPIPEScore; the gap between them is what the batch path buys.
func BenchmarkScoreBatch(b *testing.B) {
	pr, eng := benchSetup(b)
	rng := rand.New(rand.NewSource(11))
	cands := make([]seq.Sequence, 24)
	for i := range cands {
		cands[i] = seq.Random(rng, "cand", 130, seq.YeastComposition())
	}
	ids := []int{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ScoreBatch(cands, ids, 1)
	}
	_ = pr
}

// BenchmarkWindowCache is the shared window-similarity cache in
// isolation: a Get/Put cycle over a rotating key set sized to force a
// steady-state mix of hits, misses, and LRU evictions.
func BenchmarkWindowCache(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	const nKeys = 4096
	keys := make([]string, nKeys)
	for i := range keys {
		buf := make([]byte, 20)
		for j := range buf {
			buf[j] = byte(seq.Letter(rng.Intn(seq.NumAminoAcids)))
		}
		keys[i] = string(buf)
	}
	val := []simindex.WinScore{{Protein: 1, Score: 40}, {Protein: 7, Score: 36}}
	c := simindex.NewWindowCache(nKeys / 2) // half-capacity: sustained evictions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%nKeys]
		if _, ok := c.Get(k); !ok {
			c.Put(k, val)
		}
	}
}

// BenchmarkGAGeneration measures one GA generation without PIPE (pure
// selection + operators).
func BenchmarkGAGeneration(b *testing.B) {
	eval := ga.EvaluatorFunc(func(seqs []seq.Sequence) []float64 {
		out := make([]float64, len(seqs))
		for i := range out {
			out[i] = float64(i%10) / 10
		}
		return out
	})
	p := ga.DefaultParams()
	p.PopulationSize = 200
	engine, err := ga.New(p, eval)
	if err != nil {
		b.Fatal(err)
	}
	engine.InitPopulation()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
}
